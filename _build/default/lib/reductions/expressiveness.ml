module Relation = Relalg.Relation
module Digraph = Graphlib.Digraph

let is_monotone_between ~query db db' =
  Relation.subset (query db) (query db')

let monotonicity_trials ~seed ~trials ~query =
  let rng = Negdl_util.Prng.create seed in
  let preserved = ref 0 in
  let violated = ref 0 in
  for _ = 1 to trials do
    let n = 3 + Negdl_util.Prng.int rng 3 in
    let g =
      Graphlib.Generate.random ~seed:(Negdl_util.Prng.int rng 100000) ~n
        ~p:0.3
    in
    let u = Negdl_util.Prng.int rng n and v = Negdl_util.Prng.int rng n in
    if u <> v && not (Digraph.has_edge g u v) then begin
      let g' = Digraph.add_edge g u v in
      if Relation.subset (query g) (query g') then incr preserved
      else incr violated
    end
  done;
  (!preserved, !violated)

let distance_witness () =
  (* G: two disjoint 2-edge paths 0->1->2 and 3->4->5.  The quadruple
     (0, 2, 3, 5) is in D(G): dist(0,2) = 2 <= dist(3,5) = 2.  Adding the
     shortcut 3->5 makes dist(3,5) = 1 < 2, expelling the quadruple. *)
  let g = Digraph.make 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let g' = Digraph.add_edge g 3 5 in
  (g, g', Distance.quad 0 2 3 5)

let stage_counts p ~make_db sizes =
  List.map
    (fun n ->
      let trace = Evallib.Inflationary.eval_trace p (make_db n) in
      List.length trace.Evallib.Saturate.deltas)
    sizes
