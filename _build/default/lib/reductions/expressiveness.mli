(** Empirical footholds for the Section 5 expressiveness picture:

    DATALOG < Stratified < Inflationary DATALOG = FP = FO+IFP.

    Non-expressibility cannot be "run", but its witnesses can:

    - positive DATALOG defines only {e monotone} queries, and the distance
      query of Proposition 2 is not monotone — {!distance_witness} exhibits
      a concrete graph pair G, G' with G contained in G' and a quadruple
      in D(G) that leaves D(G');
    - first-order queries stabilise in a bounded number of inflationary
      stages, and the distance program's stage count grows with the path
      length — {!stage_counts} measures it (contrast with pi_1, whose
      inflationary semantics is first-order and stabilises in one
      stage). *)

val is_monotone_between :
  query:(Relalg.Database.t -> Relalg.Relation.t) ->
  Relalg.Database.t ->
  Relalg.Database.t ->
  bool
(** [is_monotone_between ~query db db'] — for [db] included in [db']: does
    [query db] stay included in [query db']? *)

val monotonicity_trials :
  seed:int ->
  trials:int ->
  query:(Graphlib.Digraph.t -> Relalg.Relation.t) ->
  int * int
(** Random trials: generate a graph, add one random edge, test inclusion of
    the query results.  Returns (preserved, violated) counts. *)

val distance_witness :
  unit ->
  Graphlib.Digraph.t * Graphlib.Digraph.t * Relalg.Tuple.t
(** A concrete non-monotonicity witness for the distance query: graphs
    G within G' and a quadruple in D(G) but not in D(G') — adding an edge
    shortens the comparison pair.  Checked by the tests and the harness. *)

val stage_counts :
  Datalog.Ast.program -> make_db:(int -> Relalg.Database.t) -> int list -> int list
(** Number of inflationary stages on a family of databases, one entry per
    requested size. *)
