module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Digraph = Graphlib.Digraph
module Traverse = Graphlib.Traverse

let program =
  Datalog.Parser.parse_program_exn
    "s1(X, Y) :- e(X, Y).\n\
     s1(X, Y) :- e(X, Z), s1(Z, Y).\n\
     s2(Xs, Ys) :- e(Xs, Ys).\n\
     s2(Xs, Ys) :- e(Xs, Zs), s2(Zs, Ys).\n\
     s3(X, Y, Xs, Ys) :- e(X, Y), !s2(Xs, Ys).\n\
     s3(X, Y, Xs, Ys) :- e(X, Z), s1(Z, Y), !s2(Xs, Ys)."

let carrier = "s3"

let inflationary g =
  Evallib.Inflationary.carrier program ~carrier (Digraph.to_database g)

let stratified g =
  Evallib.Idb.get
    (Evallib.Stratified.eval_exn program (Digraph.to_database g))
    carrier

let vsym = Digraph.vertex_symbol

let quad x y x' y' =
  Tuple.of_list [ vsym x; vsym y; vsym x'; vsym y' ]

let fold_quads g f =
  let n = Digraph.vertex_count g in
  let acc = ref (Relation.empty 4) in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      for x' = 0 to n - 1 do
        for y' = 0 to n - 1 do
          if f x y x' y' then acc := Relation.add (quad x y x' y') !acc
        done
      done
    done
  done;
  !acc

let reference g = fold_quads g (fun x y x' y' -> Traverse.distance_query g x y x' y')

let reference_stratified g =
  let tc = Traverse.transitive_closure g in
  fold_quads g (fun x y x' y' ->
      Digraph.has_edge tc x y && not (Digraph.has_edge tc x' y'))
