let parse = Datalog.Parser.parse_program_exn

let pi1 = parse "t(X) :- e(Y, X), !t(Y)."

let pi2 =
  parse
    "s1(X, Y) :- e(X, Y).\n\
     s1(X, Y) :- e(X, Z), s1(Z, Y).\n\
     s2(X, Y, Z, W) :- s1(X, Y), !s1(Z, W)."

let transitive_closure =
  parse "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let toggle = parse "t(Z) :- !t(W)."

let win_move = parse "win(X) :- e(X, Y), !win(Y)."

let same_generation =
  parse
    "sg(X, Y) :- flat(X, Y).\n\
     sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."

let reach_unreach =
  parse
    "reach(X) :- source(X).\n\
     reach(Y) :- reach(X), e(X, Y).\n\
     unreach(X) :- node(X), !reach(X)."

let distance = Distance.program

let all =
  [
    ("pi1", pi1);
    ("pi2", pi2);
    ("tc", transitive_closure);
    ("toggle", toggle);
    ("win_move", win_move);
    ("same_generation", same_generation);
    ("reach_unreach", reach_unreach);
    ("distance", distance);
  ]
