open Datalog.Dsl

let bare ?(t = "t") () = (t, [ v "Z" ]) <-- [ neg t [ v "W" ] ]

let guarded ?(t = "t") ~guard ~guard_arity () =
  let guard_vars = List.init guard_arity (fun i -> v (Printf.sprintf "U%d" (i + 1))) in
  (t, [ v "Z" ]) <-- [ neg guard guard_vars; neg t [ v "W" ] ]
