module Ast = Datalog.Ast

type compiled = {
  program : Ast.program;
  q_pred : string;
  t_pred : string;
  so_preds : (string * string) list;
}

let fresh_name base used =
  let rec try_name candidate =
    if List.mem candidate used then try_name (candidate ^ "_f")
    else candidate
  in
  try_name base

let compile (snf : Folog.Eso.snf) =
  let so_preds =
    List.map
      (fun (name, _arity) -> (name, String.lowercase_ascii name))
      snf.Folog.Eso.snf_second_order
  in
  let matrix_preds =
    List.concat_map
      (fun conj ->
        List.filter_map
          (function
            | Folog.Nnf.L_atom (_, p, _) -> Some p
            | Folog.Nnf.L_equal _ -> None)
          conj)
      snf.Folog.Eso.disjuncts
  in
  let used = List.map snd so_preds @ matrix_preds in
  let q_pred = fresh_name "q" used in
  let t_pred = fresh_name "t" (q_pred :: used) in
  (* First-order variables get clean uppercase names. *)
  let var_map =
    List.mapi
      (fun i x -> (x, Printf.sprintf "V%d" (i + 1)))
      (snf.Folog.Eso.universals @ snf.Folog.Eso.existentials)
  in
  let term = function
    | Folog.Fo.Var x -> (
      match List.assoc_opt x var_map with
      | Some x' -> Ast.Var x'
      | None -> Ast.Var x)
    | Folog.Fo.Const c -> Ast.Const c
  in
  let pred_name p =
    match List.assoc_opt p so_preds with
    | Some p' -> p'
    | None -> p
  in
  let literal = function
    | Folog.Nnf.L_atom (true, p, args) ->
      Ast.Pos (Ast.atom (pred_name p) (List.map term args))
    | Folog.Nnf.L_atom (false, p, args) ->
      Ast.Neg (Ast.atom (pred_name p) (List.map term args))
    | Folog.Nnf.L_equal (true, t1, t2) -> Ast.Eq (term t1, term t2)
    | Folog.Nnf.L_equal (false, t1, t2) -> Ast.Neq (term t1, term t2)
  in
  let copy_rules =
    List.map
      (fun (name, arity) ->
        let p = pred_name name in
        let args = List.init arity (fun i -> Ast.Var (Printf.sprintf "U%d" (i + 1))) in
        Ast.rule (Ast.atom p args) [ Ast.Pos (Ast.atom p args) ])
      snf.Folog.Eso.snf_second_order
  in
  let q_args =
    List.map (fun x -> Ast.Var (List.assoc x var_map)) snf.Folog.Eso.universals
  in
  let q_rules =
    List.map
      (fun conj -> Ast.rule (Ast.atom q_pred q_args) (List.map literal conj))
      snf.Folog.Eso.disjuncts
  in
  let toggle =
    Toggle.guarded ~t:t_pred ~guard:q_pred
      ~guard_arity:(List.length snf.Folog.Eso.universals)
      ()
  in
  {
    program = Ast.program (copy_rules @ q_rules @ [ toggle ]);
    q_pred;
    t_pred;
    so_preds;
  }

let compile_sentence sentence =
  match Folog.Eso.skolem_normal_form sentence with
  | Error _ as e -> e
  | Ok snf -> Ok (compile snf)

let has_fixpoint compiled db =
  Fixpointlib.Solve.exists (Fixpointlib.Solve.prepare compiled.program db)
