(** Proposition 1: Inflationary DATALOG = existential FO+IFP.

    Both directions of the correspondence, as executable translations:

    - {!operators_of_program}: each IDB predicate S of a program becomes
      the FO operator phi_S(x-bar, S-bar) = the disjunction, over the rules
      with head S, of "exists (body-only variables). head unification /\
      body literals".  The formula is existential and the simultaneous
      inflationary induction of the system equals the program's
      inflationary semantics.
    - {!program_of_operators}: an operator whose body is an existential
      formula is compiled back to rules by bringing the matrix to DNF, one
      rule per disjunct. *)

val operators_of_program : Datalog.Ast.program -> Folog.Ifp.operator list
(** One operator per IDB predicate.  The operator's variables are
    [V1, ..., Vk]. *)

val program_of_operators :
  Folog.Ifp.operator list -> (Datalog.Ast.program, string) result
(** Fails when some operator body has a universal quantifier in prenex form
    (not existential). *)

val program_of_operators_exn :
  Folog.Ifp.operator list -> Datalog.Ast.program

val agree :
  Datalog.Ast.program -> Relalg.Database.t -> bool
(** Checks that the program's inflationary semantics coincides with the
    simultaneous IFP of its operator translation — the statement of
    Proposition 1 on one database (used by tests and the experiment
    harness). *)
