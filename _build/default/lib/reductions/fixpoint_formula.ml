module Fo = Folog.Fo
module Ifp = Folog.Ifp
module Eso = Folog.Eso
module Ast = Datalog.Ast

let formula p =
  let operators = Prop1.operators_of_program p in
  Fo.conj
    (List.map
       (fun (op : Ifp.operator) ->
         let head =
           Fo.Atom (op.Ifp.pred, List.map (fun x -> Fo.Var x) op.Ifp.vars)
         in
         Fo.forall op.Ifp.vars (Fo.Iff (head, op.Ifp.body)))
       operators)

let idb_arities p =
  match Ast.idb_schema p with
  | Ok schema -> Relalg.Schema.to_list schema
  | Error msg -> invalid_arg ("Fixpoint_formula: " ^ msg)

let existence_sentence p =
  { Eso.second_order = idb_arities p; matrix = formula p }

let is_fixpoint_via_formula p db s =
  let extra =
    List.map (fun (pred, _) -> (pred, Evallib.Idb.get s pred)) (idb_arities p)
  in
  Fo.holds ~extra db (formula p)

let count_witnesses p db = Eso.count_witnesses db (existence_sentence p)
