(** Lemma 1: the 3-colorability program pi_COL.

    The fixed 11-rule program over an edge relation [e]:

    {v
    r(X) :- r(X).    b(X) :- b(X).    g(X) :- g(X).
    p(X) :- e(X, Y), r(X), r(Y).
    p(X) :- e(X, Y), b(X), b(Y).
    p(X) :- e(X, Y), g(X), g(Y).
    p(X) :- g(X), b(X).
    p(X) :- b(X), r(X).
    p(X) :- r(X), g(X).
    p(X) :- !r(X), !b(X), !g(X).
    t(Z) :- p(X), !t(W).
    v}

    The first three rules make the colors guessable; the next six punish a
    monochromatic edge or a doubly-colored node, the tenth an uncolored
    node, and the last rule destroys every fixpoint in which the penalty
    relation [p] is non-empty.  (pi_COL, D) has a fixpoint iff the graph in
    [e] is 3-colorable, and the fixpoints are exactly the proper
    3-colorings. *)

val program : Datalog.Ast.program

val solver : Graphlib.Digraph.t -> Fixpointlib.Solve.t
(** Fixpoint searcher on (pi_COL, the graph's database). *)

val has_fixpoint : Graphlib.Digraph.t -> bool

val coloring_of_fixpoint :
  Graphlib.Digraph.t -> Evallib.Idb.t -> int array
(** Reads a coloring off a fixpoint: 0 = r, 1 = b, 2 = g.
    @raise Invalid_argument if some vertex has no color in the fixpoint. *)
