lib/reductions/sat_db.ml: Array Datalog Evallib Fixpointlib List Printf Relalg Satlib Toggle
