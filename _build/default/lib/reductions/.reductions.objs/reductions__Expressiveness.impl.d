lib/reductions/expressiveness.ml: Distance Evallib Graphlib List Negdl_util Relalg
