lib/reductions/coloring.mli: Datalog Evallib Fixpointlib Graphlib
