lib/reductions/toggle.ml: Datalog List Printf
