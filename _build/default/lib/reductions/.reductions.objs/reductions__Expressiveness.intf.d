lib/reductions/expressiveness.mli: Datalog Graphlib Relalg
