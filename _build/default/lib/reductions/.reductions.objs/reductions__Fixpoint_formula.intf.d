lib/reductions/fixpoint_formula.mli: Datalog Evallib Folog Relalg
