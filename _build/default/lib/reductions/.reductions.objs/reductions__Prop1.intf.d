lib/reductions/prop1.mli: Datalog Folog Relalg
