lib/reductions/classics.ml: Datalog Distance
