lib/reductions/sat_db.mli: Datalog Evallib Fixpointlib Relalg Satlib
