lib/reductions/classics.mli: Datalog
