lib/reductions/succinct3col.mli: Circuitlib Datalog Fixpointlib Relalg
