lib/reductions/distance.ml: Datalog Evallib Graphlib Relalg
