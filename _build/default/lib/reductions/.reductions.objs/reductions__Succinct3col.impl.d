lib/reductions/succinct3col.ml: Array Circuitlib Datalog Fixpointlib Hashtbl List Printf Relalg
