lib/reductions/fixpoint_formula.ml: Datalog Evallib Folog List Prop1 Relalg
