lib/reductions/fagin.mli: Datalog Folog Relalg
