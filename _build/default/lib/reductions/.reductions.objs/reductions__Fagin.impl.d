lib/reductions/fagin.ml: Datalog Fixpointlib Folog List Printf String Toggle
