lib/reductions/coloring.ml: Array Datalog Evallib Fixpointlib Graphlib Printf Relalg
