lib/reductions/prop1.ml: Datalog Evallib Folog List Printf Relalg String
