lib/reductions/toggle.mli: Datalog
