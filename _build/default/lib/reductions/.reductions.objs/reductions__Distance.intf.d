lib/reductions/distance.mli: Datalog Graphlib Relalg
