module Ast = Datalog.Ast
module Circuit = Circuitlib.Circuit

type t = {
  program : Ast.program;
  bits : int;
  edge_pred : string;
}

let xvar i = Ast.Var (Printf.sprintf "X%d" (i + 1))

let yvar i = Ast.Var (Printf.sprintf "Y%d" (i + 1))

(* The 2n canonical variables, x-block then y-block. *)
let pair_vars n = List.init n xvar @ List.init n yvar

let bit_const b = Ast.const (if b then "1" else "0")

let compile sg =
  let n = Circuitlib.Succinct.bits sg in
  let circuit = Circuitlib.Succinct.circuit sg in
  let gates = Circuit.gates circuit in
  let num_gates = Array.length gates in
  let out_index = num_gates - 1 in
  let gate_pred i = if i = out_index then "e" else Printf.sprintf "g%d" i in
  let input_position =
    (* gate index -> which circuit input it is *)
    let table = Hashtbl.create 16 in
    Array.iteri (fun j gate_idx -> Hashtbl.add table gate_idx j)
      (Circuit.input_indices circuit);
    fun i -> Hashtbl.find table i
  in
  let vars = pair_vars n in
  let gate_atom i = Ast.atom (gate_pred i) vars in
  let gate_rules =
    List.concat
      (List.mapi
         (fun i gate ->
           match gate with
           | Circuit.In ->
             let j = input_position i in
             let head_args =
               List.mapi
                 (fun pos v -> if pos = j then bit_const true else v)
                 vars
             in
             [ Ast.rule (Ast.atom (gate_pred i) head_args) [] ]
           | Circuit.And (b, c) ->
             [
               Ast.rule (gate_atom i)
                 [ Ast.Pos (gate_atom b); Ast.Pos (gate_atom c) ];
             ]
           | Circuit.Or (b, c) ->
             [
               Ast.rule (gate_atom i) [ Ast.Pos (gate_atom b) ];
               Ast.rule (gate_atom i) [ Ast.Pos (gate_atom c) ];
             ]
           | Circuit.Not b ->
             [ Ast.rule (gate_atom i) [ Ast.Neg (gate_atom b) ] ])
         (Array.to_list gates))
  in
  (* Vectorised pi_COL on n-tuples of bits. *)
  let xs = List.init n xvar in
  let ys = List.init n yvar in
  let color_atom c args = Ast.atom c args in
  let copy c = Ast.rule (color_atom c xs) [ Ast.Pos (color_atom c xs) ] in
  let p_head = Ast.atom "p" xs in
  let monochromatic c =
    Ast.rule p_head
      [
        Ast.Pos (Ast.atom "e" (xs @ ys));
        Ast.Pos (color_atom c xs);
        Ast.Pos (color_atom c ys);
      ]
  in
  let two_colors c1 c2 =
    Ast.rule p_head [ Ast.Pos (color_atom c1 xs); Ast.Pos (color_atom c2 xs) ]
  in
  let col_rules =
    [
      copy "r";
      copy "b";
      copy "g";
      monochromatic "r";
      monochromatic "b";
      monochromatic "g";
      two_colors "g" "b";
      two_colors "b" "r";
      two_colors "r" "g";
      Ast.rule p_head
        [
          Ast.Neg (color_atom "r" xs);
          Ast.Neg (color_atom "b" xs);
          Ast.Neg (color_atom "g" xs);
        ];
      Ast.rule
        (Ast.atom "t" [ Ast.Var "Z" ])
        [ Ast.Pos p_head; Ast.Neg (Ast.atom "t" [ Ast.Var "W" ]) ];
    ]
  in
  {
    program = Ast.program (gate_rules @ col_rules);
    bits = n;
    edge_pred = "e";
  }

let database () = Relalg.Database.create_strings [ "0"; "1" ]

let solver t = Fixpointlib.Solve.prepare t.program (database ())

let has_fixpoint t = Fixpointlib.Solve.exists (solver t)

let node_tuple ~bits u =
  Relalg.Tuple.of_list
    (List.init bits (fun j ->
         Relalg.Symbol.intern (if (u lsr j) land 1 = 1 then "1" else "0")))
