(** Proposition 2: the distance query, where inflationary and stratified
    semantics part ways.

    The 6-rule program with carrier [s3]:

    {v
    s1(X, Y)  :- e(X, Y).
    s1(X, Y)  :- e(X, Z), s1(Z, Y).
    s2(Xs, Ys) :- e(Xs, Ys).
    s2(Xs, Ys) :- e(Xs, Zs), s2(Zs, Ys).
    s3(X, Y, Xs, Ys) :- e(X, Y), !s2(Xs, Ys).
    s3(X, Y, Xs, Ys) :- e(X, Z), s1(Z, Y), !s2(Xs, Ys).
    v}

    Under {e inflationary} semantics the two transitive-closure copies grow
    level by level, and at stage n+1 the carrier admits (x, y, x', y')
    exactly when dist(x, y) <= n+1 and dist(x', y') > n, so the limit is
    the distance query D(x, y, x', y'): "some path x -> y is no longer than
    every path x' -> y'".  Read as a {e stratified} program (it is
    stratifiable: the negation is not recursive) the same text computes
    TC(x, y) /\ not TC(x', y') instead.  The distance query is neither
    first-order nor positive-DATALOG definable (it is not monotone), so
    this single program separates Inflationary DATALOG from DATALOG and
    witnesses that inflationary and stratified semantics differ. *)

val program : Datalog.Ast.program

val carrier : string
(** ["s3"]. *)

val inflationary : Graphlib.Digraph.t -> Relalg.Relation.t
(** The carrier under inflationary semantics — the distance query. *)

val stratified : Graphlib.Digraph.t -> Relalg.Relation.t
(** The carrier under stratified semantics — TC /\ not TC. *)

val reference : Graphlib.Digraph.t -> Relalg.Relation.t
(** The distance query computed from BFS distances (ground truth). *)

val reference_stratified : Graphlib.Digraph.t -> Relalg.Relation.t
(** TC(x, y) /\ not TC(x', y') computed from Warshall closure. *)

val quad : int -> int -> int -> int -> Relalg.Tuple.t
(** The tuple (vx, vy, vx', vy') in the graph-database encoding. *)
