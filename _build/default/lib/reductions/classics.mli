(** The classic programs, ready-made.

    Every program the paper (or the folklore around it) names, as parsed
    values — so examples, tests and downstream users do not have to retype
    them.  All use the repository's concrete syntax conventions (predicates
    lowercase, variables uppercase, EDB relation [e] for edges). *)

val pi1 : Datalog.Ast.program
(** Section 2's running example: [t(X) :- e(Y, X), !t(Y).] *)

val pi2 : Datalog.Ast.program
(** Section 2's two-predicate example: transitive closure s1 plus
    [s2(X, Y, Z, W) :- s1(X, Y), !s1(Z, W).] *)

val transitive_closure : Datalog.Ast.program
(** Section 2's pi_3, head predicate [s]. *)

val toggle : Datalog.Ast.program
(** [t(Z) :- !t(W).] — no fixpoint on any non-empty universe. *)

val win_move : Datalog.Ast.program
(** [win(X) :- e(X, Y), !win(Y).] — the game program. *)

val same_generation : Datalog.Ast.program
(** The classic same-generation program over [up]/[flat]/[down]. *)

val reach_unreach : Datalog.Ast.program
(** Reachability from [source] plus its stratified complement:
    [reach]/[unreach] over [e], [source], [node]. *)

val distance : Datalog.Ast.program
(** Proposition 2's 6-rule distance program (alias of
    [Distance.program]). *)

val all : (string * Datalog.Ast.program) list
(** Every program above with a short name, for table-driven tests. *)
