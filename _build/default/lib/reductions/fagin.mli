(** Theorem 1: compiling an NP property to a DATALOG-not program.

    Given an existential second-order sentence in Skolem normal form
    exists S-bar forall x-bar exists y-bar (theta_1 \/ ... \/ theta_k),
    emit the program pi_C of the proof of Theorem 1:

    - a copy rule [sj(u-bar) :- sj(u-bar)] per second-order variable, whose
      only purpose is to make sj a nondatabase relation (so a fixpoint can
      hold an arbitrary guessed value for it);
    - a rule [q(x-bar) :- theta_i] per disjunct, so that on a fixpoint
      q = A{^ |x-bar|} iff the guessed relations witness the sentence;
    - the guarded toggle [t(Z) :- !q(u-bar), !t(W)], which destroys every
      fixpoint in which q is not full.

    For any database D over the original vocabulary, (pi_C, D) has a
    fixpoint iff D satisfies the sentence. *)

type compiled = {
  program : Datalog.Ast.program;
  q_pred : string;  (** The "coverage" predicate; arity = #universals. *)
  t_pred : string;  (** The toggle predicate. *)
  so_preds : (string * string) list;
      (** Second-order variable -> IDB predicate name. *)
}

val compile : Folog.Eso.snf -> compiled
(** Predicate names are lowercased second-order variable names; [q]/[t] get
    primes appended if those names collide with anything in the sentence. *)

val compile_sentence : Folog.Eso.t -> (compiled, string) result
(** Convenience: Skolemize then compile; fails when the prefix is not
    universal-then-existential (see {!Folog.Eso.skolem_normal_form}). *)

val has_fixpoint : compiled -> Relalg.Database.t -> bool
(** Runs the SAT-backed fixpoint searcher on (pi_C, D). *)
