(** Example 1: SATISFIABILITY as fixpoint existence.

    A CNF instance I becomes a database D(I) over the vocabulary
    (v{^ 1}, p{^ 2}, n{^ 2}): the universe is the variables plus the
    clauses, [v] marks the variables, and [p(c, x)] / [n(c, x)] record that
    x occurs positively / negatively in clause c.  The fixed program pi_SAT

    {v
    s(X) :- s(X).
    q(X) :- v(X).
    q(X) :- !s(X), p(X, Y), s(Y).
    q(X) :- !s(X), n(X, Y), !s(Y).
    t(Z) :- !q(U), !t(W).
    v}

    has a fixpoint on D(I) iff I is satisfiable, and the fixpoints are in
    one-to-one correspondence with the satisfying assignments (via the
    relation [s], the set of true variables) — the basis of Theorems 1
    and 2. *)

val program : Datalog.Ast.program
(** The fixed program pi_SAT. *)

val database_of_cnf : Satlib.Cnf.t -> Relalg.Database.t
(** D(I).  Variable i is the constant [xi], clause j (0-based) the constant
    [cj]. *)

val cnf_of_database : Relalg.Database.t -> (Satlib.Cnf.t, string) result
(** The inverse map I(D) for databases in the class S (universe splits into
    V and clauses, p and n go from clauses to variables).  Returns an error
    describing the first violation otherwise. *)

val assignment_of_fixpoint :
  Satlib.Cnf.t -> Evallib.Idb.t -> bool array
(** Reads the satisfying assignment off a fixpoint: variable i is true iff
    [s(xi)] is in the fixpoint.  Indexed by variable, [.(0)] unused. *)

val fixpoint_of_assignment :
  Satlib.Cnf.t -> bool array -> Evallib.Idb.t
(** The fixpoint corresponding to a satisfying assignment: s = the true
    variables, q = the whole universe, t = empty. *)

val solver : Satlib.Cnf.t -> Fixpointlib.Solve.t
(** The fixpoint searcher prepared on (pi_SAT, D(I)). *)
