(** The first-order fixpoint formula phi_pi of Section 3.

    For a program pi with IDB relations S-bar = (S1, ..., Sm) there is a
    first-order sentence phi_pi(S-bar) over the database vocabulary plus
    S-bar such that, for every database D and valuation S-bar,

    S-bar is a fixpoint of (pi, D)  iff  D |= phi_pi(S-bar).

    The formula is the conjunction, over the IDB predicates, of
    for-all x-bar (S(x-bar) <-> phi_S(x-bar, S-bar)) where phi_S is the
    existential formula defining one application of Theta for S (the same
    operators as Proposition 1's translation).

    The paper uses phi_pi in three ways, all reproduced here:
    - existentially quantified, it puts fixpoint existence in NP
      ({!existence_sentence} — the easy direction of Theorem 1);
    - with a unique-witness quantifier it captures pi-UNIQUE-FIXPOINT
      (Theorem 2's logical form; {!count_witnesses} decides it);
    - relativised under second-order quantifiers it yields the FO(NP)
      upper bound for least fixpoints (Theorem 3). *)

val formula : Datalog.Ast.program -> Folog.Fo.formula
(** phi_pi, with the IDB predicate names as free relation symbols. *)

val existence_sentence : Datalog.Ast.program -> Folog.Eso.t
(** The ESO sentence exists S-bar. phi_pi: true on D iff (pi, D) has a
    fixpoint. *)

val is_fixpoint_via_formula :
  Datalog.Ast.program -> Relalg.Database.t -> Evallib.Idb.t -> bool
(** Model-checks phi_pi directly (independent of the Theta machinery); must
    agree with [Theta.is_fixpoint] — a cross-check the test suite runs. *)

val count_witnesses : Datalog.Ast.program -> Relalg.Database.t -> int
(** The number of second-order witnesses of phi_pi = the number of
    fixpoints, by brute-force enumeration (tiny universes only). *)
