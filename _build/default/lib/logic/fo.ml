module Symbol = Relalg.Symbol
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

type term =
  | Var of string
  | Const of Symbol.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Equal of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Iff of formula * formula
  | Exists of string * formula
  | Forall of string * formula

let var x = Var x

let const name = Const (Symbol.intern name)

let atom name args = Atom (name, args)

let rec conj = function
  | [] -> True
  | [ f ] -> f
  | f :: rest -> And (f, conj rest)

let rec disj = function
  | [] -> False
  | [ f ] -> f
  | f :: rest -> Or (f, disj rest)

let exists vars f = List.fold_right (fun x acc -> Exists (x, acc)) vars f

let forall vars f = List.fold_right (fun x acc -> Forall (x, acc)) vars f

let term_vars = function
  | Var x -> [ x ]
  | Const _ -> []

let rec free_variables_raw = function
  | True | False -> []
  | Atom (_, args) -> List.concat_map term_vars args
  | Equal (t1, t2) -> term_vars t1 @ term_vars t2
  | Not f -> free_variables_raw f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
    free_variables_raw f @ free_variables_raw g
  | Exists (x, f) | Forall (x, f) ->
    List.filter (fun y -> y <> x) (free_variables_raw f)

let free_variables f = List.sort_uniq String.compare (free_variables_raw f)

let predicates f =
  let table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let rec walk = function
    | True | False | Equal _ -> ()
    | Atom (name, args) -> (
      let arity = List.length args in
      match Hashtbl.find_opt table name with
      | None -> Hashtbl.add table name arity
      | Some k when k <> arity ->
        invalid_arg
          (Printf.sprintf "Fo.predicates: %s used with arities %d and %d"
             name k arity)
      | Some _ -> ())
    | Not f -> walk f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) ->
      walk f;
      walk g
    | Exists (_, f) | Forall (_, f) -> walk f
  in
  walk f;
  Hashtbl.fold (fun n a acc -> (n, a) :: acc) table []
  |> List.sort compare

let is_sentence f = free_variables f = []

type env = (string * Symbol.t) list

let term_value env = function
  | Const c -> c
  | Var x -> (
    match List.assoc_opt x env with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Fo.eval: unbound variable %s" x))

let eval ?(extra = []) db env formula =
  let universe = Relalg.Database.universe db in
  let relation name arity =
    match List.assoc_opt name extra with
    | Some r -> r
    | None -> Relalg.Database.relation_or_empty ~arity name db
  in
  let rec go env = function
    | True -> true
    | False -> false
    | Atom (name, args) ->
      let tuple = Tuple.of_list (List.map (term_value env) args) in
      let r = relation name (List.length args) in
      if Relation.arity r <> Tuple.arity tuple then
        invalid_arg
          (Printf.sprintf "Fo.eval: %s has arity %d, used with %d" name
             (Relation.arity r) (Tuple.arity tuple))
      else Relation.mem tuple r
    | Equal (t1, t2) -> Symbol.equal (term_value env t1) (term_value env t2)
    | Not f -> not (go env f)
    | And (f, g) -> go env f && go env g
    | Or (f, g) -> go env f || go env g
    | Implies (f, g) -> (not (go env f)) || go env g
    | Iff (f, g) -> go env f = go env g
    | Exists (x, f) -> List.exists (fun v -> go ((x, v) :: env) f) universe
    | Forall (x, f) -> List.for_all (fun v -> go ((x, v) :: env) f) universe
  in
  go env formula

let holds ?extra db f = eval ?extra db [] f

let defined_relation ?extra db ~vars formula =
  let universe = Relalg.Database.universe db in
  let k = List.length vars in
  let acc = ref (Relation.empty k) in
  let rec enumerate env = function
    | [] ->
      if eval ?extra db env formula then
        let tuple =
          Tuple.of_list (List.map (fun x -> List.assoc x env) vars)
        in
        acc := Relation.add tuple !acc
    | x :: rest ->
      List.iter (fun v -> enumerate ((x, v) :: env) rest) universe
  in
  enumerate [] vars;
  !acc

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const c -> Format.pp_print_string ppf (Symbol.name c)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      args
  | Equal (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Not f -> Format.fprintf ppf "~%a" pp_inner f
  | And (f, g) -> Format.fprintf ppf "%a /\\ %a" pp_inner f pp_inner g
  | Or (f, g) -> Format.fprintf ppf "%a \\/ %a" pp_inner f pp_inner g
  | Implies (f, g) -> Format.fprintf ppf "%a -> %a" pp_inner f pp_inner g
  | Iff (f, g) -> Format.fprintf ppf "%a <-> %a" pp_inner f pp_inner g
  | Exists (x, f) -> Format.fprintf ppf "exists %s. %a" x pp f
  | Forall (x, f) -> Format.fprintf ppf "forall %s. %a" x pp f

and pp_inner ppf f =
  match f with
  | True | False | Atom _ | Equal _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
