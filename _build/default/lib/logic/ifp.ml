module Relation = Relalg.Relation

type operator = {
  pred : string;
  vars : string list;
  body : Fo.formula;
}

let apply ?(extra = []) db op s =
  Fo.defined_relation ~extra:((op.pred, s) :: extra) db ~vars:op.vars op.body

let arity op = List.length op.vars

let step db ops current =
  List.map
    (fun op ->
      let s = List.assoc op.pred current in
      let derived = apply ~extra:current db op s in
      (op.pred, Relation.union s derived))
    ops

let equal_valuations v1 v2 =
  List.for_all2
    (fun (n1, r1) (n2, r2) -> String.equal n1 n2 && Relation.equal r1 r2)
    v1 v2

let stages db ops =
  let start = List.map (fun op -> (op.pred, Relation.empty (arity op))) ops in
  let rec loop current acc =
    let next = step db ops current in
    if equal_valuations current next then List.rev acc
    else loop next (next :: acc)
  in
  loop start [ start ]

let simultaneous db ops =
  match List.rev (stages db ops) with
  | last :: _ -> last
  | [] -> []

let inflationary_fixpoint db op =
  List.assoc op.pred (simultaneous db [ op ])

let partial_fixpoint ?(max_steps = 10000) db op =
  let rec loop seen current step =
    if step > max_steps then
      invalid_arg "Ifp.partial_fixpoint: max_steps exceeded"
    else
      let next = apply db op current in
      if Relation.equal next current then Some current
      else if List.exists (Relation.equal next) seen then None
      else loop (next :: seen) next (step + 1)
  in
  loop [ Relation.empty (arity op) ] (Relation.empty (arity op)) 1
