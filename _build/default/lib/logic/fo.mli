(** First-order logic over finite databases.

    Formula evaluation under the active-domain semantics the paper uses
    throughout: quantifiers range over the universe of the database.  The
    evaluator accepts an extra valuation for relation symbols outside the
    database — that is how second-order quantification ({!Eso}) and
    fixpoint iteration ({!Ifp}) reuse it. *)

type term =
  | Var of string
  | Const of Relalg.Symbol.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Equal of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Iff of formula * formula
  | Exists of string * formula
  | Forall of string * formula

(** {1 Construction helpers} *)

val var : string -> term

val const : string -> term

val atom : string -> term list -> formula

val conj : formula list -> formula
(** Right-nested conjunction; [conj []] is [True]. *)

val disj : formula list -> formula
(** Right-nested disjunction; [disj []] is [False]. *)

val exists : string list -> formula -> formula

val forall : string list -> formula -> formula

(** {1 Queries} *)

val free_variables : formula -> string list
(** Sorted, without duplicates. *)

val predicates : formula -> (string * int) list
(** Relation symbols used, with arities, sorted; inconsistent use raises
    [Invalid_argument]. *)

val is_sentence : formula -> bool

(** {1 Evaluation} *)

type env = (string * Relalg.Symbol.t) list
(** Variable assignment (later entries shadow earlier ones). *)

val eval :
  ?extra:(string * Relalg.Relation.t) list ->
  Relalg.Database.t ->
  env ->
  formula ->
  bool
(** [eval ~extra db env phi]: truth of [phi] in [db] extended with the
    [extra] relations, under [env].
    @raise Invalid_argument on an unbound variable or arity mismatch. *)

val holds :
  ?extra:(string * Relalg.Relation.t) list ->
  Relalg.Database.t ->
  formula ->
  bool
(** Evaluation of a sentence (empty environment). *)

val defined_relation :
  ?extra:(string * Relalg.Relation.t) list ->
  Relalg.Database.t ->
  vars:string list ->
  formula ->
  Relalg.Relation.t
(** [defined_relation db ~vars phi] is the relation
    {a-bar : D |= phi(a-bar)} with components in the order of [vars]. *)

val pp : Format.formatter -> formula -> unit

val to_string : formula -> string
