lib/logic/ifp.mli: Fo Relalg
