lib/logic/ifp.ml: Fo List Relalg String
