lib/logic/eso.ml: Fo List Nnf Printf Relalg
