lib/logic/fo.ml: Format Hashtbl List Printf Relalg String
