lib/logic/nnf.mli: Fo
