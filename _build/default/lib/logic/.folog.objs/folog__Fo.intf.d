lib/logic/fo.mli: Format Relalg
