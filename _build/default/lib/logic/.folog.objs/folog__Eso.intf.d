lib/logic/eso.mli: Fo Nnf Relalg
