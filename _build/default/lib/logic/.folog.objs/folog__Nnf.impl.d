lib/logic/nnf.ml: Fo List Printf
