(** FO+IFP: first-order logic with inflationary fixpoints (Gurevich-Shelah).

    An operator is a first-order formula phi(x-bar, S) with a distinguished
    relation variable S; it maps a relation S to
    H(S) = {a-bar : D, S |= phi(a-bar, S)}.  Its {e inflationary} iteration
    H-tilde(S) = S union H(S), started at the empty relation, reaches the
    inductive fixpoint within |A|{^ k} stages.  Section 4 defines
    Inflationary DATALOG as exactly this construction with existential
    first-order operators, iterated simultaneously — the correspondence
    stated as Proposition 1 and implemented in [Reductions.Prop1]. *)

type operator = {
  pred : string;  (** The relation variable S. *)
  vars : string list;  (** x-bar: the tuple of free first-order variables. *)
  body : Fo.formula;
      (** phi(x-bar, S); may also use database predicates, and — in a
          simultaneous system — the other operators' predicates. *)
}

val apply :
  ?extra:(string * Relalg.Relation.t) list ->
  Relalg.Database.t ->
  operator ->
  Relalg.Relation.t ->
  Relalg.Relation.t
(** One application H(S) (not inflationary). *)

val inflationary_fixpoint :
  Relalg.Database.t -> operator -> Relalg.Relation.t
(** The inductive fixpoint of the single operator. *)

val simultaneous :
  Relalg.Database.t -> operator list -> (string * Relalg.Relation.t) list
(** Simultaneous inflationary induction over a system of operators, as in
    the multi-predicate case of Section 4: at each stage every operator is
    applied to the current joint valuation and the results are accumulated.
    Returns the limit valuation, keyed by predicate. *)

val stages :
  Relalg.Database.t -> operator list -> (string * Relalg.Relation.t) list list
(** The successive joint valuations S{^ 1}, S{^ 2}, ..., ending with the
    fixpoint (the last two entries are equal only if the iteration is
    non-trivial; the list is the increasing chain without repetition). *)

val partial_fixpoint :
  ?max_steps:int ->
  Relalg.Database.t ->
  operator ->
  Relalg.Relation.t option
(** FO+PFP's building block: iterate the {e plain} operator H (without the
    inflationary union) from the empty relation; [Some] the first repeated
    value when the orbit reaches a fixpoint, [None] when it enters a
    non-trivial cycle — the convention partial-fixpoint logic uses for
    "undefined".  Unlike the inflationary iteration this can take
    exponentially many steps, which is why FO+PFP captures PSPACE rather
    than PTIME; [max_steps] (default 10000) guards the loop and raises
    [Invalid_argument] when exceeded. *)
