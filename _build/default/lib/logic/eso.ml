module Relation = Relalg.Relation

type t = {
  second_order : (string * int) list;
  matrix : Fo.formula;
}

(* Enumerate all valuations of the second-order variables, calling [f] on
   each; stops early when [f] returns true and reports whether any call
   succeeded. *)
let exists_valuation db second_order f =
  let universe = Relalg.Database.universe db in
  let rec go acc = function
    | [] -> f (List.rev acc)
    | (name, arity) :: rest ->
      let tuples = Relation.to_list (Relation.full universe arity) in
      let rec subsets current = function
        | [] -> go ((name, current) :: acc) rest
        | tuple :: more ->
          subsets current more
          || subsets (Relation.add tuple current) more
      in
      subsets (Relation.empty arity) tuples
  in
  go [] second_order

let fold_valuations db second_order f init =
  let universe = Relalg.Database.universe db in
  let acc = ref init in
  let rec go bound = function
    | [] -> acc := f !acc (List.rev bound)
    | (name, arity) :: rest ->
      let tuples = Relation.to_list (Relation.full universe arity) in
      let rec subsets current = function
        | [] -> go ((name, current) :: bound) rest
        | tuple :: more ->
          subsets current more;
          subsets (Relation.add tuple current) more
      in
      subsets (Relation.empty arity) tuples
  in
  go [] second_order;
  !acc

let holds db s =
  exists_valuation db s.second_order (fun extra ->
      Fo.holds ~extra db s.matrix)

let witness db s =
  let found = ref None in
  let _ =
    exists_valuation db s.second_order (fun extra ->
        if Fo.holds ~extra db s.matrix then begin
          found := Some extra;
          true
        end
        else false)
  in
  !found

let count_witnesses db s =
  fold_valuations db s.second_order
    (fun n extra -> if Fo.holds ~extra db s.matrix then n + 1 else n)
    0

(* --- Skolem normal form -------------------------------------------------- *)

type snf = {
  snf_second_order : (string * int) list;
  universals : string list;
  existentials : string list;
  disjuncts : Nnf.literal list list;
}

let skolem_normal_form s =
  let prefix, matrix = Nnf.prenex s.matrix in
  (* Check the prefix is for-all* exists*. *)
  let rec split_prefix seen_exists univ exist = function
    | [] -> Ok (List.rev univ, List.rev exist)
    | Nnf.Q_forall x :: rest ->
      if seen_exists then
        Error
          (Printf.sprintf
             "prefix is not universal-then-existential: forall %s follows an \
              existential quantifier (general Skolemization with \
              function-graph variables is not implemented)"
             x)
      else split_prefix false (x :: univ) exist rest
    | Nnf.Q_exists x :: rest -> split_prefix true univ (x :: exist) rest
  in
  match split_prefix false [] [] prefix with
  | Error _ as e -> e
  | Ok (universals, existentials) ->
    Ok
      {
        snf_second_order = s.second_order;
        universals;
        existentials;
        disjuncts = Nnf.dnf matrix;
      }

let skolem_normal_form_exn s =
  match skolem_normal_form s with
  | Ok snf -> snf
  | Error msg -> invalid_arg ("Eso.skolem_normal_form: " ^ msg)

let sentence_of_snf snf =
  let matrix =
    Fo.disj
      (List.map
         (fun c -> Fo.conj (List.map Nnf.literal_formula c))
         snf.disjuncts)
  in
  {
    second_order = snf.snf_second_order;
    matrix = Fo.forall snf.universals (Fo.exists snf.existentials matrix);
  }

let snf_holds db snf = holds db (sentence_of_snf snf)
