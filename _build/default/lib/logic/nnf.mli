(** Normal forms: negation normal form, prenex form, disjunctive normal
    form.

    These are the syntactic transformations behind the proof of Theorem 1:
    bring the first-order part of an existential second-order sentence to
    prenex form, check the prefix is universal-then-existential, put the
    matrix in DNF, and read each disjunct off as a Datalog rule body. *)

val nnf : Fo.formula -> Fo.formula
(** Eliminates [Implies]/[Iff] and pushes negation to the atoms. *)

type quantifier =
  | Q_forall of string
  | Q_exists of string

val prenex : Fo.formula -> quantifier list * Fo.formula
(** Prenex form of a sentence (or formula; free variables are left alone).
    Bound variables are renamed apart ([x], [x'1], [x'2], ...) so
    extraction cannot capture.  The returned matrix is quantifier-free and
    in NNF. *)

type literal =
  | L_atom of bool * string * Fo.term list
      (** [(polarity, predicate, arguments)]; [false] = negated. *)
  | L_equal of bool * Fo.term * Fo.term

val literal_formula : literal -> Fo.formula

val dnf : Fo.formula -> literal list list
(** DNF of a quantifier-free formula as a list of conjunctions of literals.
    Tautological conjunctions (containing both a literal and its negation)
    are dropped; the empty list means the formula is unsatisfiable, a list
    containing an empty conjunction covers everything.
    @raise Invalid_argument on a quantified formula. *)

val dnf_formula : Fo.formula -> Fo.formula
(** The DNF re-assembled as a formula (for display and round-trip tests). *)
