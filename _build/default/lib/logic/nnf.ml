open Fo

let rec nnf = function
  | True -> True
  | False -> False
  | (Atom _ | Equal _) as f -> f
  | Implies (f, g) -> nnf (Or (Not f, g))
  | Iff (f, g) -> nnf (Or (And (f, g), And (Not f, Not g)))
  | And (f, g) -> And (nnf f, nnf g)
  | Or (f, g) -> Or (nnf f, nnf g)
  | Exists (x, f) -> Exists (x, nnf f)
  | Forall (x, f) -> Forall (x, nnf f)
  | Not f -> (
    match f with
    | True -> False
    | False -> True
    | Atom _ | Equal _ -> Not f
    | Not g -> nnf g
    | And (g, h) -> Or (nnf (Not g), nnf (Not h))
    | Or (g, h) -> And (nnf (Not g), nnf (Not h))
    | Implies (g, h) -> And (nnf g, nnf (Not h))
    | Iff (g, h) -> nnf (Or (And (g, Not h), And (Not g, h)))
    | Exists (x, g) -> Forall (x, nnf (Not g))
    | Forall (x, g) -> Exists (x, nnf (Not g)))

type quantifier =
  | Q_forall of string
  | Q_exists of string

(* Substitute a variable by another variable in terms/formulas (used only
   with fresh targets, so no capture is possible). *)
let subst_term x y = function
  | Var z when z = x -> Var y
  | t -> t

let rec subst x y = function
  | True -> True
  | False -> False
  | Atom (n, args) -> Atom (n, List.map (subst_term x y) args)
  | Equal (t1, t2) -> Equal (subst_term x y t1, subst_term x y t2)
  | Not f -> Not (subst x y f)
  | And (f, g) -> And (subst x y f, subst x y g)
  | Or (f, g) -> Or (subst x y f, subst x y g)
  | Implies (f, g) -> Implies (subst x y f, subst x y g)
  | Iff (f, g) -> Iff (subst x y f, subst x y g)
  | Exists (z, f) -> if z = x then Exists (z, f) else Exists (z, subst x y f)
  | Forall (z, f) -> if z = x then Forall (z, f) else Forall (z, subst x y f)

let prenex formula =
  let counter = ref 0 in
  let fresh x =
    incr counter;
    Printf.sprintf "%s'%d" x !counter
  in
  let rec pull = function
    | (True | False | Atom _ | Equal _ | Not _) as f -> ([], f)
    | Exists (x, f) ->
      let x' = fresh x in
      let prefix, matrix = pull (subst x x' f) in
      (Q_exists x' :: prefix, matrix)
    | Forall (x, f) ->
      let x' = fresh x in
      let prefix, matrix = pull (subst x x' f) in
      (Q_forall x' :: prefix, matrix)
    | And (f, g) ->
      let pf, mf = pull f in
      let pg, mg = pull g in
      (pf @ pg, And (mf, mg))
    | Or (f, g) ->
      let pf, mf = pull f in
      let pg, mg = pull g in
      (pf @ pg, Or (mf, mg))
    | Implies _ | Iff _ -> assert false (* eliminated by nnf *)
  in
  pull (nnf formula)

type literal =
  | L_atom of bool * string * Fo.term list
  | L_equal of bool * Fo.term * Fo.term

let literal_formula = function
  | L_atom (true, n, args) -> Atom (n, args)
  | L_atom (false, n, args) -> Not (Atom (n, args))
  | L_equal (true, t1, t2) -> Equal (t1, t2)
  | L_equal (false, t1, t2) -> Not (Equal (t1, t2))

let negate_literal = function
  | L_atom (b, n, args) -> L_atom (not b, n, args)
  | L_equal (b, t1, t2) -> L_equal (not b, t1, t2)

let contradictory conjunction =
  List.exists
    (fun l -> List.mem (negate_literal l) conjunction)
    conjunction

let dnf formula =
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Atom (n, args) -> [ [ L_atom (true, n, args) ] ]
    | Equal (t1, t2) -> [ [ L_equal (true, t1, t2) ] ]
    | Not (Atom (n, args)) -> [ [ L_atom (false, n, args) ] ]
    | Not (Equal (t1, t2)) -> [ [ L_equal (false, t1, t2) ] ]
    | Not _ -> assert false (* NNF *)
    | Or (f, g) -> go f @ go g
    | And (f, g) ->
      let df = go f and dg = go g in
      List.concat_map (fun cf -> List.map (fun cg -> cf @ cg) dg) df
    | Implies _ | Iff _ -> assert false (* NNF *)
    | Exists _ | Forall _ ->
      invalid_arg "Nnf.dnf: formula is not quantifier-free"
  in
  let dedup_conj c =
    List.fold_left (fun acc l -> if List.mem l acc then acc else acc @ [ l ]) [] c
  in
  go (nnf formula)
  |> List.map dedup_conj
  |> List.filter (fun c -> not (contradictory c))

let dnf_formula formula =
  disj (List.map (fun c -> conj (List.map literal_formula c)) (dnf formula))
