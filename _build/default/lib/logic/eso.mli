(** Existential second-order logic and Skolem normal form.

    By Fagin's theorem (quoted as the Theorem in Section 3), the ESO-definable
    collections of finite databases are exactly the NP ones; Theorem 1
    turns any ESO sentence — brought to the Skolem normal form
    for-all x-bar exists y-bar (theta_1 \/ ... \/ theta_k) — into a
    DATALOG-not program whose fixpoints mirror the second-order witnesses.
    This module provides the sentence representation, an enumeration-based
    model checker (the brute-force side of Fagin's theorem, usable on small
    universes), and the normal-form transformation. *)

type t = {
  second_order : (string * int) list;
      (** The existentially quantified relation variables with arities. *)
  matrix : Fo.formula;
      (** First-order part; may use database predicates and the
          second-order variables. *)
}

val holds : Relalg.Database.t -> t -> bool
(** Enumerates all values of the second-order variables (2{^ |A|^k} per
    k-ary variable: exponential, small universes only). *)

val witness :
  Relalg.Database.t -> t -> (string * Relalg.Relation.t) list option
(** A witnessing valuation of the second-order variables, if any. *)

val count_witnesses : Relalg.Database.t -> t -> int

(** {1 Skolem normal form} *)

type snf = {
  snf_second_order : (string * int) list;
  universals : string list;
  existentials : string list;
  disjuncts : Nnf.literal list list;
      (** The matrix theta_1 \/ ... \/ theta_k, each theta_i a conjunction
          of literals. *)
}

val skolem_normal_form : t -> (snf, string) result
(** Succeeds when the prenex form of the first-order part has a
    universal-then-existential prefix (the common case for natural NP
    encodings, and all the paper's examples).  A fully general
    transformation would introduce auxiliary second-order variables for
    function graphs; inputs needing it are rejected with an explanatory
    error. *)

val skolem_normal_form_exn : t -> snf

val sentence_of_snf : snf -> t
(** Rebuilds an ESO sentence from the normal form (for round-trip tests). *)

val snf_holds : Relalg.Database.t -> snf -> bool
