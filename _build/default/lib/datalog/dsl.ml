let v x = Ast.Var x

let c name = Ast.const name

let ci n = Ast.const (string_of_int n)

let pos pred args = Ast.Pos (Ast.atom pred args)

let neg pred args = Ast.Neg (Ast.atom pred args)

let eq t1 t2 = Ast.Eq (t1, t2)

let neq t1 t2 = Ast.Neq (t1, t2)

let ( <-- ) (pred, args) body = Ast.rule (Ast.atom pred args) body

let fact pred args = Ast.rule (Ast.atom pred args) []

let prog rules = Ast.program rules
