(** The predicate dependency graph of a program.

    There is an edge P -> Q whenever Q occurs in the body of a rule whose
    head is P; the edge is {e negative} when some such occurrence is under
    negation.  Stratification (Chandra-Harel, cited in the paper's
    introduction) is a property of this graph: a program is stratifiable
    iff no cycle goes through a negative edge. *)

type t

val build : Ast.program -> t

val predicates : t -> string list
(** All predicates of the program, sorted. *)

val depends_on : t -> string -> string list
(** [depends_on g p]: the predicates occurring in bodies of rules with head
    [p]. *)

val negatively_depends_on : t -> string -> string list

val graph : t -> Graphlib.Digraph.t * string array
(** The underlying digraph and the vertex -> predicate name table. *)

val negative_edges : t -> (string * string) list

val recursive_predicates : t -> string list
(** Predicates lying on a directed cycle (including self-loops). *)

val has_recursion_through_negation : t -> bool
(** True iff some cycle contains a negative edge — i.e. the program is not
    stratifiable. *)
