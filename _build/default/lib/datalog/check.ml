type error =
  | Inconsistent_arity of { pred : string; arity1 : int; arity2 : int }
  | Empty_program

type info = {
  idb : string list;
  edb : string list;
  rule_count : int;
  uses_negation : bool;
  uses_inequality : bool;
  positive : bool;
  range_restricted : bool;
  unrestricted_rules : Ast.rule list;
}

let error_to_string = function
  | Inconsistent_arity { pred; arity1; arity2 } ->
    Printf.sprintf "predicate %s used with arities %d and %d" pred arity1
      arity2
  | Empty_program -> "program has no rules"

let arity_errors (p : Ast.program) =
  let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let errors = ref [] in
  let see (a : Ast.atom) =
    let arity = List.length a.args in
    match Hashtbl.find_opt table a.pred with
    | None -> Hashtbl.add table a.pred arity
    | Some k when k <> arity ->
      let clash = Inconsistent_arity { pred = a.pred; arity1 = k; arity2 = arity } in
      if not (List.mem clash !errors) then errors := clash :: !errors
    | Some _ -> ()
  in
  List.iter
    (fun (r : Ast.rule) ->
      see r.head;
      List.iter
        (fun l -> List.iter see (Ast.atoms_of_literal l))
        r.body)
    p.rules;
  List.rev !errors

let uses_negation (p : Ast.program) =
  List.exists
    (fun (r : Ast.rule) ->
      List.exists (function Ast.Neg _ -> true | _ -> false) r.body)
    p.rules

let uses_inequality (p : Ast.program) =
  List.exists
    (fun (r : Ast.rule) ->
      List.exists (function Ast.Neq _ -> true | _ -> false) r.body)
    p.rules

let validate p =
  let errors = arity_errors p in
  let errors = if p.Ast.rules = [] then Empty_program :: errors else errors in
  match errors with
  | _ :: _ -> Error errors
  | [] ->
    let unrestricted =
      List.filter (fun r -> not (Ast.is_range_restricted r)) p.Ast.rules
    in
    Ok
      {
        idb = Ast.idb_predicates p;
        edb = Ast.edb_predicates p;
        rule_count = List.length p.Ast.rules;
        uses_negation = uses_negation p;
        uses_inequality = uses_inequality p;
        positive = Ast.is_positive p;
        range_restricted = unrestricted = [];
        unrestricted_rules = unrestricted;
      }

let validate_exn p =
  match validate p with
  | Ok info -> info
  | Error errors ->
    invalid_arg
      ("Check.validate: "
      ^ String.concat "; " (List.map error_to_string errors))

let describe p =
  match validate p with
  | Error errors ->
    "invalid program: "
    ^ String.concat "; " (List.map error_to_string errors)
  | Ok info ->
    Printf.sprintf
      "%d rule(s); IDB: %s; EDB: %s; %s%s%s"
      info.rule_count
      (String.concat ", " info.idb)
      (match info.edb with [] -> "(none)" | l -> String.concat ", " l)
      (if info.positive then "positive DATALOG" else "DATALOG with negation")
      (if info.uses_inequality then ", uses inequality" else "")
      (if info.range_restricted then "" else ", has universe-ranging variables")
