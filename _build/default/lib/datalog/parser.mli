(** Recursive-descent parser for DATALOG-not programs.

    Grammar:
    {v
    program  ::= rule*
    rule     ::= atom ( ":-" literal ("," literal)* )? "."
    literal  ::= ("!" | "not") atom
               | atom
               | term ("=" | "!=") term
    atom     ::= ident ( "(" term ("," term)* ")" )?
    term     ::= VARIABLE | ident
    v}

    Example — the paper's program pi_1, [T(x) <- E(y,x), not T(y)]:
    {v t(X) :- e(Y, X), !t(Y). v} *)

val parse_program : string -> (Ast.program, string) result

val parse_program_exn : string -> Ast.program
(** @raise Failure with the parse error message. *)

val parse_rule : string -> (Ast.rule, string) result
(** Parses exactly one rule. *)

val parse_rule_exn : string -> Ast.rule
