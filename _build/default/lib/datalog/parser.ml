type stream = {
  mutable tokens : (Lexer.token * Lexer.position) list;
}

exception Syntax_error of string

let fail_at pos msg =
  raise
    (Syntax_error
       (Printf.sprintf "line %d, column %d: %s" pos.Lexer.line pos.Lexer.column
          msg))

let peek s =
  match s.tokens with
  | [] -> (Lexer.EOF, { Lexer.line = 0; column = 0 })
  | t :: _ -> t

let advance s =
  match s.tokens with
  | [] -> ()
  | _ :: rest -> s.tokens <- rest

let expect s tok =
  let actual, pos = peek s in
  if actual = tok then advance s
  else
    fail_at pos
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string actual))

let parse_term s =
  match peek s with
  | Lexer.VARIABLE x, _ ->
    advance s;
    Ast.Var x
  | Lexer.IDENT c, _ ->
    advance s;
    Ast.const c
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a term but found %s" (Lexer.token_to_string tok))

let parse_term_list s =
  let rec more acc =
    match peek s with
    | Lexer.COMMA, _ ->
      advance s;
      more (parse_term s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_term s ]

let parse_atom_named s name =
  match peek s with
  | Lexer.LPAREN, _ ->
    advance s;
    let args = parse_term_list s in
    expect s Lexer.RPAREN;
    Ast.atom name args
  | _ -> Ast.atom name []

let parse_atom s =
  match peek s with
  | Lexer.IDENT name, _ ->
    advance s;
    parse_atom_named s name
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a predicate but found %s"
         (Lexer.token_to_string tok))

let parse_literal s =
  match peek s with
  | (Lexer.BANG | Lexer.NOT_KW), _ ->
    advance s;
    Ast.Neg (parse_atom s)
  | Lexer.VARIABLE _, _ -> (
    let t1 = parse_term s in
    match peek s with
    | Lexer.EQUAL, _ ->
      advance s;
      Ast.Eq (t1, parse_term s)
    | Lexer.NOT_EQUAL, _ ->
      advance s;
      Ast.Neq (t1, parse_term s)
    | tok, pos ->
      fail_at pos
        (Printf.sprintf "expected '=' or '!=' after a variable, found %s"
           (Lexer.token_to_string tok)))
  | Lexer.IDENT name, _ -> (
    advance s;
    (* Could be an atom, or a constant on the left of a comparison. *)
    match peek s with
    | Lexer.EQUAL, _ ->
      advance s;
      Ast.Eq (Ast.const name, parse_term s)
    | Lexer.NOT_EQUAL, _ ->
      advance s;
      Ast.Neq (Ast.const name, parse_term s)
    | _ -> Ast.Pos (parse_atom_named s name))
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a body literal but found %s"
         (Lexer.token_to_string tok))

let parse_body s =
  let rec more acc =
    match peek s with
    | Lexer.COMMA, _ ->
      advance s;
      more (parse_literal s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_literal s ]

let parse_one_rule s =
  let head = parse_atom s in
  match peek s with
  | Lexer.PERIOD, _ ->
    advance s;
    Ast.rule head []
  | Lexer.TURNSTILE, _ ->
    advance s;
    (* An empty body before the period is allowed: "p(X) :- ." *)
    let body =
      match peek s with
      | Lexer.PERIOD, _ -> []
      | _ -> parse_body s
    in
    expect s Lexer.PERIOD;
    Ast.rule head body
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected ':-' or '.' after the head, found %s"
         (Lexer.token_to_string tok))

let parse_all text =
  match Lexer.tokenize text with
  | Error msg -> Error msg
  | Ok tokens -> (
    let s = { tokens } in
    try
      let rec rules acc =
        match peek s with
        | Lexer.EOF, _ -> List.rev acc
        | _ -> rules (parse_one_rule s :: acc)
      in
      Ok (rules [])
    with Syntax_error msg -> Error msg)

let parse_program text =
  match parse_all text with
  | Error _ as e -> e
  | Ok rules -> Ok (Ast.program rules)

let parse_program_exn text =
  match parse_program text with
  | Ok p -> p
  | Error msg -> failwith ("Parser.parse_program: " ^ msg)

let parse_rule text =
  match parse_all text with
  | Error _ as e -> e
  | Ok [ r ] -> Ok r
  | Ok rules ->
    Error (Printf.sprintf "expected exactly one rule, found %d" (List.length rules))

let parse_rule_exn text =
  match parse_rule text with
  | Ok r -> r
  | Error msg -> failwith ("Parser.parse_rule: " ^ msg)
