module SMap = Map.Make (String)

type t = {
  names : string array;
  index : int SMap.t;
  digraph : Graphlib.Digraph.t;
  neg_edges : (int * int) list;
}

let build (p : Ast.program) =
  let names = Array.of_list (Ast.predicates p) in
  let index =
    Array.to_list names
    |> List.mapi (fun i n -> (n, i))
    |> List.to_seq |> SMap.of_seq
  in
  let edges = ref [] in
  let neg_edges = ref [] in
  List.iter
    (fun (r : Ast.rule) ->
      let hd = SMap.find r.head.pred index in
      List.iter
        (fun l ->
          match l with
          | Ast.Pos a ->
            edges := (hd, SMap.find a.pred index) :: !edges
          | Ast.Neg a ->
            let e = (hd, SMap.find a.pred index) in
            edges := e :: !edges;
            neg_edges := e :: !neg_edges
          | Ast.Eq _ | Ast.Neq _ -> ())
        r.body)
    p.rules;
  let digraph = Graphlib.Digraph.make (Array.length names) !edges in
  let neg_edges = List.sort_uniq compare !neg_edges in
  { names; index; digraph; neg_edges }

let predicates g = Array.to_list g.names

let depends_on g p =
  match SMap.find_opt p g.index with
  | None -> []
  | Some i -> List.map (fun j -> g.names.(j)) (Graphlib.Digraph.succ g.digraph i)

let negatively_depends_on g p =
  match SMap.find_opt p g.index with
  | None -> []
  | Some i ->
    List.filter_map
      (fun (u, v) -> if u = i then Some g.names.(v) else None)
      g.neg_edges
    |> List.sort_uniq String.compare

let graph g = (g.digraph, Array.copy g.names)

let negative_edges g =
  List.map (fun (u, v) -> (g.names.(u), g.names.(v))) g.neg_edges

let recursive_predicates g =
  let { Graphlib.Scc.component; _ } = Graphlib.Scc.compute g.digraph in
  let size = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace size c (1 + Option.value ~default:0 (Hashtbl.find_opt size c)))
    component;
  Array.to_list g.names
  |> List.filteri (fun i _ ->
         Hashtbl.find size component.(i) > 1
         || Graphlib.Digraph.has_edge g.digraph i i)

let has_recursion_through_negation g =
  let { Graphlib.Scc.component; _ } = Graphlib.Scc.compute g.digraph in
  List.exists (fun (u, v) -> component.(u) = component.(v)) g.neg_edges
