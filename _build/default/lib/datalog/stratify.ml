type stratification = {
  strata : string list list;
  stratum_of : string -> int option;
}

type result =
  | Stratified of stratification
  | Not_stratifiable of { offending : string * string }

let stratify (p : Ast.program) =
  let dep = Depgraph.build p in
  let digraph, names = Depgraph.graph dep in
  let { Graphlib.Scc.count; component } = Graphlib.Scc.compute digraph in
  let index_of name =
    let found = ref (-1) in
    Array.iteri (fun i n -> if String.equal n name then found := i) names;
    !found
  in
  (* A negative edge inside a strongly connected component defeats
     stratification. *)
  let bad =
    List.find_opt
      (fun (u, v) -> component.(index_of u) = component.(index_of v))
      (Depgraph.negative_edges dep)
  in
  match bad with
  | Some offending -> Not_stratifiable { offending }
  | None ->
    let idb = Ast.idb_predicates p in
    let is_idb name = List.mem name idb in
    (* Component-level edges with polarity; stratum of a component is the
       max over its out-edges of the target stratum (+1 when negative).
       EDB-only components sit at stratum 0 and IDB components start at 0 as
       well. *)
    let neg_pairs =
      List.map
        (fun (u, v) -> (component.(index_of u), component.(index_of v)))
        (Depgraph.negative_edges dep)
    in
    let comp_edges =
      List.filter_map
        (fun (u, v) ->
          let cu = component.(u) and cv = component.(v) in
          if cu = cv then None
          else Some (cu, cv, List.mem (cu, cv) neg_pairs))
        (Graphlib.Digraph.edges digraph)
    in
    let stratum = Array.make count 0 in
    (* Tarjan's component numbering is reverse topological: component 0 has
       no out-edges to later components... more precisely, for an edge
       cu -> cv between distinct components, cv < cu.  Processing components
       in increasing order therefore sees dependencies first. *)
    for c = 0 to count - 1 do
      let s =
        List.fold_left
          (fun acc (cu, cv, negative) ->
            if cu = c then max acc (stratum.(cv) + if negative then 1 else 0)
            else acc)
          0 comp_edges
      in
      stratum.(c) <- s
    done;
    let stratum_of name =
      if is_idb name then
        let i = index_of name in
        if i >= 0 then Some stratum.(component.(i)) else None
      else None
    in
    let max_stratum =
      List.fold_left
        (fun acc name ->
          match stratum_of name with
          | Some s -> max acc s
          | None -> acc)
        0 idb
    in
    let strata =
      List.init (max_stratum + 1) (fun s ->
          List.filter (fun name -> stratum_of name = Some s) idb)
    in
    Stratified { strata; stratum_of }

let is_stratified p =
  match stratify p with
  | Stratified _ -> true
  | Not_stratifiable _ -> false

let rules_of_stratum (p : Ast.program) strat s =
  List.filter
    (fun (r : Ast.rule) -> strat.stratum_of r.head.pred = Some s)
    p.Ast.rules
