(** Abstract syntax of DATALOG-not programs (Section 2 of the paper).

    A program is a finite set of rules [h <- t1, ..., tn] where the head [h]
    is an atom over a relational symbol and the body literals are atoms,
    negated atoms, equalities or inequalities between terms.  Relational
    symbols that never occur in a head are the {e database} (EDB) relations;
    the others are the {e nondatabase} (IDB) relations defined by the
    program. *)

type term =
  | Var of string
  | Const of Relalg.Symbol.t

type atom = {
  pred : string;
  args : term list;
}

type literal =
  | Pos of atom  (** [q(t, ...)] *)
  | Neg of atom  (** [not q(t, ...)] *)
  | Eq of term * term  (** [t1 = t2] *)
  | Neq of term * term  (** [t1 != t2] *)

type rule = {
  head : atom;
  body : literal list;
}

type program = {
  rules : rule list;
}

val program : rule list -> program

val rule : atom -> literal list -> rule

val atom : string -> term list -> atom

val var : string -> term

val const : string -> term
(** Interns the constant name. *)

(** {1 Structure queries} *)

val atoms_of_literal : literal -> atom list
(** The atom under a [Pos] or [Neg]; empty for comparisons. *)

val idb_predicates : program -> string list
(** Head predicates, sorted, without duplicates. *)

val edb_predicates : program -> string list
(** Predicates occurring only in bodies. *)

val predicates : program -> string list

val is_idb : program -> string -> bool

val inferred_schema : program -> (Relalg.Schema.t, string) result
(** Predicate arities inferred from all occurrences; [Error msg] when some
    predicate is used with two different arities. *)

val idb_schema : program -> (Relalg.Schema.t, string) result
(** Schema restricted to IDB predicates. *)

val rule_variables : rule -> string list
(** All variables of the rule, without duplicates, in first-occurrence order
    (head first, then body left to right). *)

val head_only_variables : rule -> string list
(** Variables occurring in the head but in no body literal at all. *)

val positive_body_variables : rule -> string list
(** Variables bound by some positive body atom. *)

val constants : program -> Relalg.Symbol.t list
(** All constants appearing in the program, sorted, without duplicates. *)

val is_positive : program -> bool
(** No negated atoms and no inequalities — a DATALOG program in the paper's
    sense. *)

val is_range_restricted : rule -> bool
(** Every variable of the rule occurs in some positive body atom.  The
    paper's semantics does {e not} require this (unrestricted variables
    range over the universe); the predicate is informational. *)

val rename_predicate : old_name:string -> new_name:string -> program -> program
(** Renames every occurrence of a predicate. *)

val equal_term : term -> term -> bool

val compare_rule : rule -> rule -> int

val union : program -> program -> program
(** Concatenates rule lists, dropping exact duplicate rules. *)
