(** Combinators for building programs directly in OCaml.

    The reduction generators (pi_SAT, pi_COL, the Fagin compiler, ...) build
    their programs with these.  Variable names should start with an
    uppercase letter so the result round-trips through the concrete
    syntax. *)

val v : string -> Ast.term
(** A variable. *)

val c : string -> Ast.term
(** A constant. *)

val ci : int -> Ast.term
(** An integer constant (interned decimal). *)

val pos : string -> Ast.term list -> Ast.literal

val neg : string -> Ast.term list -> Ast.literal

val eq : Ast.term -> Ast.term -> Ast.literal

val neq : Ast.term -> Ast.term -> Ast.literal

val ( <-- ) : string * Ast.term list -> Ast.literal list -> Ast.rule
(** [("t", [v "X"]) <-- [pos "e" [v "Y"; v "X"]; neg "t" [v "Y"]]] is the
    paper's rule T(x) <- E(y, x), not T(y). *)

val fact : string -> Ast.term list -> Ast.rule
(** A rule with an empty body. *)

val prog : Ast.rule list -> Ast.program
