(** Semantics-preserving program simplifications.

    The generated programs (the Fagin compiler's output, the succinct
    3-coloring stack) contain redundancies: duplicate body literals,
    trivially true or false comparisons, duplicate rules.  These passes
    clean them up; they preserve {e every} semantics in this repository —
    inflationary, stratified, well-founded, stable, and the full fixpoint
    census — a property the test suite checks on random programs.

    {!drop_underivable} is stronger and correspondingly more dangerous: it
    removes predicates that bottom-up derivation can never populate.  That
    is sound for the least-fixpoint family (inflationary, stratified,
    well-founded, stable models), but {e not} for arbitrary-fixpoint
    analysis: the paper's constructions rely on "guessable" relations
    introduced by self-supporting copy rules like [s(X) :- s(X)], which are
    bottom-up-underivable yet can hold any value in a fixpoint.  It is
    therefore excluded from {!simplify} unless [~aggressive:true] is
    passed. *)

val dedup_literals : Ast.rule -> Ast.rule
(** Removes duplicate body literals (keeping first occurrences). *)

val simplify_comparisons : Ast.rule -> Ast.rule option
(** Evaluates ground or reflexive comparisons: [t = t] disappears,
    [t != t] kills the rule ([None]); comparisons between distinct
    constants are decided. *)

val dedup_rules : Ast.program -> Ast.program
(** Removes exact duplicate rules. *)

val drop_underivable : Ast.program -> Ast.program
(** Removes rules about predicates that bottom-up evaluation can never
    populate (computed as a least fixpoint at the predicate level, with
    negated literals treated as true); positive occurrences kill their
    rules, negated occurrences evaporate.  Sound for the inflationary,
    stratified, well-founded and stable semantics; {b unsound} for the
    fixpoint census — see the module description. *)

val simplify : ?aggressive:bool -> Ast.program -> Ast.program
(** All universally-sound passes to a fixed point; with
    [~aggressive:true], also {!drop_underivable}.  Default: [false]. *)

val split_independent : ?prefix:string -> Ast.program -> Ast.program
(** Factors each rule's body into connected components of the
    variable-sharing graph: components that share no variable with the head
    (nor, by construction, with the rest of the body) become fresh 0-ary
    {e guard} predicates defined by their own rules.  The toggle rule
    [t(Z) :- !q(U), !t(W)] becomes

    {v
    g1 :- !q(U).     g2 :- !t(W).     t(Z) :- g1, g2.
    v}

    shrinking its grounding from |A|{^ 3} instances to 3|A|.  Fixpoints of
    the transformed program are in bijection with the original's (the guard
    values are forced by the fixpoint condition), so fixpoint {e existence,
    enumeration, counting and uniqueness} are preserved on the original
    predicates; the stratified semantics is preserved too (guards slot into
    the stratification).  The {e inflationary} semantics is {b not}
    preserved in general — a guard, once true, stays true ("latches"),
    while the original rule re-tests its detached component at every stage
    — and least-fixpoint detection is likewise not claimed (the bijection
    does not respect pointwise inclusion).  The intended consumer is the
    SAT-backed fixpoint searcher, where the grounding compression matters
    most.  [prefix] names the guards (default ["guard"], made
    collision-free). *)

val statistics : Ast.program -> Ast.program -> string
(** A one-line before/after summary (rule and literal counts). *)
