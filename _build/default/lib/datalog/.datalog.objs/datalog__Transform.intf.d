lib/datalog/transform.mli: Ast
