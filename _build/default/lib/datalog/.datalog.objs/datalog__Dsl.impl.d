lib/datalog/dsl.ml: Ast
