lib/datalog/lexer.ml: List Printf String
