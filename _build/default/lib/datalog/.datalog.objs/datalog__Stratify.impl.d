lib/datalog/stratify.ml: Array Ast Depgraph Graphlib List String
