lib/datalog/depgraph.mli: Ast Graphlib
