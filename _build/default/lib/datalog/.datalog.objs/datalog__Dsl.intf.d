lib/datalog/dsl.mli: Ast
