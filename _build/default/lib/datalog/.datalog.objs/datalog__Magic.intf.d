lib/datalog/magic.mli: Ast Relalg
