lib/datalog/depgraph.ml: Array Ast Graphlib Hashtbl List Map Option String
