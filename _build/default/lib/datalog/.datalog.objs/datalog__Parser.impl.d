lib/datalog/parser.ml: Ast Lexer List Printf
