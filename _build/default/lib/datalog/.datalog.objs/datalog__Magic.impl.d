lib/datalog/magic.ml: Ast Hashtbl List Printf Queue Relalg Set String
