lib/datalog/transform.ml: Array Ast Fun Hashtbl List Option Printf Relalg Set String
