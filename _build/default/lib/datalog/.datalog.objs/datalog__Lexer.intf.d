lib/datalog/lexer.mli:
