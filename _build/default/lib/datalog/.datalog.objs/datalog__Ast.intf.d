lib/datalog/ast.mli: Relalg
