lib/datalog/ast.ml: Hashtbl List Printf Relalg String
