lib/datalog/check.ml: Ast Hashtbl List Printf String
