lib/datalog/check.mli: Ast
