lib/datalog/pretty.ml: Ast Format Relalg
