module Relation = Relalg.Relation
module Database = Relalg.Database

type counterexample = {
  database : Database.t;
  left : Idb.t;
  right : Idb.t;
}

let databases_over ~universe edb =
  let base = Database.create ~universe in
  List.fold_left
    (fun dbs (name, arity) ->
      let tuples = Relation.to_list (Relation.full universe arity) in
      (* Every subset of the full relation, folded into every database so
         far. *)
      let relations =
        List.fold_left
          (fun acc tuple ->
            List.concat_map
              (fun r -> [ r; Relation.add tuple r ])
              acc)
          [ Relation.empty arity ]
          tuples
      in
      List.concat_map
        (fun db -> List.map (fun r -> Database.set_relation name r db) relations)
        dbs)
    [ base ] edb

let equivalent_up_to ?(size = 2) ~eval ~edb p q =
  let common =
    List.filter
      (fun pred -> List.mem pred (Datalog.Ast.idb_predicates q))
      (Datalog.Ast.idb_predicates p)
  in
  let agree db =
    let left = eval p db in
    let right = eval q db in
    if
      List.for_all
        (fun pred ->
          Relation.equal (Idb.get left pred) (Idb.get right pred))
        common
    then None
    else Some { database = db; left; right }
  in
  let exception Found of counterexample in
  try
    let checked = ref 0 in
    for n = 1 to size do
      let universe = List.init n (fun i -> Relalg.Symbol.intern (Printf.sprintf "c%d" i)) in
      List.iter
        (fun db ->
          incr checked;
          match agree db with
          | None -> ()
          | Some cex -> raise (Found cex))
        (databases_over ~universe edb)
    done;
    Ok !checked
  with Found cex -> Error cex
