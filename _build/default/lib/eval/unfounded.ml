module GSet = Set.Make (struct
  type t = Ground.gatom

  let compare = Ground.compare_gatom
end)

let holds idb (a : Ground.gatom) =
  Idb.mem idb a.Ground.pred
  && Relalg.Relation.mem a.Ground.tuple (Idb.get idb a.Ground.pred)

let greatest_unfounded_set g ~true_facts ~false_facts =
  (* Complement computation: the supported atoms are the least set S such
     that some instance derives the atom with negated subgoals disjoint
     from T, positive subgoals disjoint from F and contained in S. *)
  let atoms = Ground.atoms g in
  let rec grow supported =
    let bigger =
      List.fold_left
        (fun acc (gr : Ground.grule) ->
          if
            (not (GSet.mem gr.Ground.head acc))
            && (not (List.exists (holds true_facts) gr.Ground.neg))
            && List.for_all
                 (fun a -> (not (holds false_facts a)) && GSet.mem a acc)
                 gr.Ground.pos
          then GSet.add gr.Ground.head acc
          else acc)
        supported (Ground.rules g)
    in
    if GSet.cardinal bigger = GSet.cardinal supported then supported
    else grow bigger
  in
  let supported = grow GSet.empty in
  List.filter (fun a -> not (GSet.mem a supported)) atoms

let eval_ground g =
  let schema = Idb.schema (Ground.to_idb g []) in
  let immediate ~true_facts ~false_facts =
    List.fold_left
      (fun acc (gr : Ground.grule) ->
        if
          List.for_all (holds true_facts) gr.Ground.pos
          && List.for_all (holds false_facts) gr.Ground.neg
        then Idb.add_fact acc gr.Ground.head.Ground.pred gr.Ground.head.Ground.tuple
        else acc)
      (Idb.empty schema) (Ground.rules g)
  in
  let rec iterate true_facts false_facts =
    let t' = immediate ~true_facts ~false_facts in
    let unfounded = greatest_unfounded_set g ~true_facts ~false_facts in
    let f' =
      List.fold_left
        (fun acc a -> Idb.add_fact acc a.Ground.pred a.Ground.tuple)
        false_facts unfounded
    in
    let t' = Idb.union true_facts t' in
    if Idb.equal t' true_facts && Idb.equal f' false_facts then (t', f')
    else iterate t' f'
  in
  let true_facts, false_facts = iterate (Idb.empty schema) (Idb.empty schema) in
  let possible = Idb.diff (Ground.to_idb g (Ground.atoms g)) false_facts in
  { Wellfounded.true_facts; possible }

let eval p db = eval_ground (Ground.ground p db)
