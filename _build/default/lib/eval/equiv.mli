(** Bounded program-equivalence checking.

    Program equivalence is undecidable in general, but for the small
    vocabularies of this repository it can be decided {e up to a universe
    size}: enumerate every database over the given EDB schema with at most
    k constants and compare the two programs' semantics on each.  This is
    the strongest practical validation for program transformations
    (simplification, decomposition, the Proposition 1 round-trip): a
    sampled property test can miss a corner, an exhaustive sweep up to
    size k cannot miss it below k. *)

type counterexample = {
  database : Relalg.Database.t;
  left : Idb.t;
  right : Idb.t;
}

val equivalent_up_to :
  ?size:int ->
  eval:(Datalog.Ast.program -> Relalg.Database.t -> Idb.t) ->
  edb:(string * int) list ->
  Datalog.Ast.program ->
  Datalog.Ast.program ->
  (int, counterexample) result
(** [equivalent_up_to ~eval ~edb p q] compares [eval p db] and [eval q db]
    on every database over the [edb] schema with universe sizes 1..[size]
    (default 2; sizes beyond 3 explode combinatorially).  Valuations are
    compared on the predicates common to both programs' IDB; predicates
    private to one side are ignored (auxiliaries introduced by
    transformations).  [Ok n] reports the number of databases checked. *)

val databases_over :
  universe:Relalg.Symbol.t list -> (string * int) list -> Relalg.Database.t list
(** All databases with exactly the given universe: every combination of
    relation values.  Size is the product of 2^(|A|^arity); keep it tiny. *)
