type justification = {
  fact : Ground.gatom;
  stage : int;
  instance : Ground.grule;
  supports : justification list;
  absences : (Ground.gatom * int option) list;
}

let explain p db ~pred tuple =
  let trace = Inflationary.eval_trace p db in
  let ground = Ground.ground p db in
  let stage_of (a : Ground.gatom) =
    Saturate.stage_of trace a.Ground.pred a.Ground.tuple
  in
  let rec justify (a : Ground.gatom) =
    match stage_of a with
    | None -> None
    | Some stage ->
      (* A firing instance at [stage]: positive subgoals strictly earlier,
         negated subgoals not yet present at stage - 1. *)
      let fires (gr : Ground.grule) =
        List.for_all
          (fun sub ->
            match stage_of sub with
            | Some s -> s < stage
            | None -> false)
          gr.Ground.pos
        && List.for_all
             (fun sub ->
               match stage_of sub with
               | Some s -> s >= stage
               | None -> true)
             gr.Ground.neg
      in
      (match List.find_opt fires (Ground.instances_for ground a) with
      | None -> None (* unreachable for a traced fact *)
      | Some instance ->
        let supports = List.filter_map justify instance.Ground.pos in
        if List.length supports <> List.length instance.Ground.pos then None
        else
          Some
            {
              fact = a;
              stage;
              instance;
              supports;
              absences =
                List.map (fun sub -> (sub, stage_of sub)) instance.Ground.neg;
            })
  in
  justify { Ground.pred; tuple }

let rec check j =
  let open Ground in
  j.instance.head.pred = j.fact.pred
  && Relalg.Tuple.equal j.instance.head.tuple j.fact.tuple
  && List.for_all (fun s -> s.stage < j.stage && check s) j.supports
  && List.for_all
       (fun (_, entered) ->
         match entered with
         | None -> true
         | Some s -> s >= j.stage)
       j.absences

let pp_instance ppf (gr : Ground.grule) =
  let lits =
    List.map Ground.gatom_to_string gr.Ground.pos
    @ List.map (fun a -> "!" ^ Ground.gatom_to_string a) gr.Ground.neg
  in
  match lits with
  | [] -> Format.fprintf ppf "%s." (Ground.gatom_to_string gr.Ground.head)
  | _ ->
    Format.fprintf ppf "%s :- %s."
      (Ground.gatom_to_string gr.Ground.head)
      (String.concat ", " lits)

let lines_of j =
  let lines = ref [] in
  let emit line = lines := line :: !lines in
  let rec go indent j =
    emit
      (Printf.sprintf "%s%s @ stage %d" indent
         (Ground.gatom_to_string j.fact)
         j.stage);
    emit (Format.asprintf "%s  by %a" indent pp_instance j.instance);
    List.iter
      (fun (a, entered) ->
        emit
          (Printf.sprintf "%s  absent then: %s%s" indent
             (Ground.gatom_to_string a)
             (match entered with
             | None -> " (never derived)"
             | Some s -> Printf.sprintf " (entered later, stage %d)" s)))
      j.absences;
    List.iter (go (indent ^ "  ")) j.supports
  in
  go "" j;
  List.rev !lines

let to_string j = String.concat "\n" (lines_of j)

let pp ppf j = Format.pp_print_string ppf (to_string j)
