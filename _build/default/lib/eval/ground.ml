module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Relation = Relalg.Relation

type gatom = {
  pred : string;
  tuple : Tuple.t;
}

let compare_gatom a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Tuple.compare a.tuple b.tuple

let gatom_to_string a = Printf.sprintf "%s%s" a.pred (Tuple.to_string a.tuple)

type grule = {
  head : gatom;
  pos : gatom list;
  neg : gatom list;
}

module GMap = Map.Make (struct
  type t = gatom

  let compare = compare_gatom
end)

type t = {
  schema : Relalg.Schema.t;  (* IDB schema *)
  atoms : gatom list;
  rules : grule list;
  by_head : grule list GMap.t;
}

(* A half-instantiated rule: variables are bound one at a time, in an order
   that follows the body so positive EDB literals prune early. *)

let variable_order (r : Datalog.Ast.rule) =
  let vars = ref [] in
  let see = function
    | Datalog.Ast.Var x -> if not (List.mem x !vars) then vars := x :: !vars
    | Datalog.Ast.Const _ -> ()
  in
  let see_lit = function
    | Datalog.Ast.Pos a | Datalog.Ast.Neg a -> List.iter see a.args
    | Datalog.Ast.Eq (t1, t2) | Datalog.Ast.Neq (t1, t2) ->
      see t1;
      see t2
  in
  (* Positive EDB-ish atoms first (any positive atom, in fact), then the
     rest of the body, then the head. *)
  List.iter
    (function Datalog.Ast.Pos _ as l -> see_lit l | _ -> ())
    r.body;
  List.iter
    (function Datalog.Ast.Pos _ -> () | l -> see_lit l)
    r.body;
  List.iter see r.head.args;
  List.rev !vars

let term_value env = function
  | Datalog.Ast.Const c -> Some c
  | Datalog.Ast.Var x -> Hashtbl.find_opt env x

(* Evaluate a literal under a partial assignment: [Some b] when decided,
   [None] when it still mentions unbound variables. *)
let eval_partial db idb_pred env (l : Datalog.Ast.literal) =
  match l with
  | Datalog.Ast.Eq (t1, t2) -> (
    match (term_value env t1, term_value env t2) with
    | Some a, Some b -> Some (Symbol.equal a b)
    | _ -> None)
  | Datalog.Ast.Neq (t1, t2) -> (
    match (term_value env t1, term_value env t2) with
    | Some a, Some b -> Some (not (Symbol.equal a b))
    | _ -> None)
  | Datalog.Ast.Pos a | Datalog.Ast.Neg a ->
    if idb_pred a.pred then None
    else
      let values = List.map (term_value env) a.args in
      if List.exists (fun v -> v = None) values then None
      else
        let tuple = Tuple.of_list (List.map Option.get values) in
        let r =
          Relalg.Database.relation_or_empty ~arity:(List.length a.args) a.pred
            db
        in
        let holds = Relation.mem tuple r in
        Some (match l with Datalog.Ast.Pos _ -> holds | _ -> not holds)

let ground ?(keep = []) (p : Datalog.Ast.program) db =
  let schema =
    match Datalog.Ast.idb_schema p with
    | Ok s -> s
    | Error msg -> invalid_arg ("Ground.ground: " ^ msg)
  in
  let idb_pred name = Relalg.Schema.mem name schema in
  let kept name = List.mem name keep && not (idb_pred name) in
  let universe = Relalg.Database.universe db in
  let raw_rules = ref [] in
  let instantiate (r : Datalog.Ast.rule) =
    let order = Array.of_list (variable_order r) in
    let env : (string, Symbol.t) Hashtbl.t = Hashtbl.create 8 in
    let gterm t =
      match term_value env t with
      | Some c -> c
      | None -> assert false
    in
    let gatom (a : Datalog.Ast.atom) =
      { pred = a.pred; tuple = Tuple.of_list (List.map gterm a.args) }
    in
    let finish () =
      (* All variables bound: every non-IDB literal is decided.  Kept EDB
         atoms are checked against the database but stay symbolic. *)
      let ok = ref true in
      let pos = ref [] in
      let neg = ref [] in
      List.iter
        (fun l ->
          if !ok then
            match l with
            | Datalog.Ast.Pos a when kept a.Datalog.Ast.pred -> (
              match eval_partial db idb_pred env l with
              | Some true -> pos := gatom a :: !pos
              | Some false -> ok := false
              | None -> assert false)
            | _ -> (
              match eval_partial db idb_pred env l with
              | Some true -> ()
              | Some false -> ok := false
              | None -> (
                match l with
                | Datalog.Ast.Pos a -> pos := gatom a :: !pos
                | Datalog.Ast.Neg a -> neg := gatom a :: !neg
                | Datalog.Ast.Eq _ | Datalog.Ast.Neq _ -> assert false)))
        r.body;
      if !ok then
        let dedup l = List.sort_uniq compare_gatom l in
        raw_rules :=
          { head = gatom r.head; pos = dedup !pos; neg = dedup !neg }
          :: !raw_rules
    in
    let rec assign i =
      if i = Array.length order then finish ()
      else begin
        let x = order.(i) in
        List.iter
          (fun v ->
            Hashtbl.replace env x v;
            (* Prune: every decided literal must not be false. *)
            let pruned =
              List.exists
                (fun l -> eval_partial db idb_pred env l = Some false)
                r.body
            in
            if not pruned then assign (i + 1);
            Hashtbl.remove env x)
          universe
      end
    in
    assign 0
  in
  List.iter instantiate p.rules;
  let rules = List.rev !raw_rules in
  (* Derivable atoms: heads of instances.  Simplify bodies against that
     set, dropping instances with an underivable positive subgoal and
     erasing vacuously-true negative subgoals; iterate to a fixed point
     since removing instances can shrink the derivable set. *)
  let rec simplify rules =
    let heads =
      List.fold_left (fun acc gr -> GMap.add gr.head () acc) GMap.empty rules
    in
    (* Kept EDB atoms were membership-checked at instantiation time, so
       they count as derivable here. *)
    let derivable a = GMap.mem a heads || kept a.pred in
    let changed = ref false in
    let rules' =
      List.filter_map
        (fun gr ->
          if List.for_all derivable gr.pos then begin
            let neg' = List.filter derivable gr.neg in
            if List.length neg' <> List.length gr.neg then changed := true;
            Some { gr with neg = neg' }
          end
          else begin
            changed := true;
            None
          end)
        rules
    in
    if !changed then simplify rules' else rules'
  in
  let rules = simplify rules in
  let by_head =
    List.fold_left
      (fun acc gr ->
        let existing = Option.value ~default:[] (GMap.find_opt gr.head acc) in
        GMap.add gr.head (gr :: existing) acc)
      GMap.empty rules
  in
  let atoms = List.map fst (GMap.bindings by_head) in
  { schema; atoms; rules; by_head }

let atoms g = g.atoms

let rules g = g.rules

let instances_for g a =
  Option.value ~default:[] (GMap.find_opt a g.by_head)

let atom_count g = List.length g.atoms

let rule_count g = List.length g.rules

let to_idb g facts =
  List.fold_left (fun idb a -> Idb.add_fact idb a.pred a.tuple) (Idb.empty g.schema)
    facts

let holds idb a =
  Idb.mem idb a.pred && Relation.mem a.tuple (Idb.get idb a.pred)

let apply g idb =
  List.fold_left
    (fun acc gr ->
      let fires =
        List.for_all (holds idb) gr.pos
        && not (List.exists (holds idb) gr.neg)
      in
      if fires then Idb.add_fact acc gr.head.pred gr.head.tuple else acc)
    (Idb.empty g.schema) g.rules

let pp ppf g =
  let pp_grule ppf gr =
    let lits =
      List.map gatom_to_string gr.pos
      @ List.map (fun a -> "!" ^ gatom_to_string a) gr.neg
    in
    match lits with
    | [] -> Format.fprintf ppf "%s." (gatom_to_string gr.head)
    | _ ->
      Format.fprintf ppf "%s :- %s." (gatom_to_string gr.head)
        (String.concat ", " lits)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_grule)
    g.rules
