lib/eval/provenance.ml: Format Ground Inflationary List Printf Relalg Saturate String
