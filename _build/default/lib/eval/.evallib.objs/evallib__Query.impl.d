lib/eval/query.ml: Datalog Idb List Naive Relalg
