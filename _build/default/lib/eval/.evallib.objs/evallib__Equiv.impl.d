lib/eval/equiv.ml: Datalog Idb List Printf Relalg
