lib/eval/idb.mli: Datalog Format Relalg
