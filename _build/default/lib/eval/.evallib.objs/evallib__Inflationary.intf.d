lib/eval/inflationary.mli: Datalog Idb Relalg Saturate
