lib/eval/idb.ml: Datalog Format List Map Printf Relalg String
