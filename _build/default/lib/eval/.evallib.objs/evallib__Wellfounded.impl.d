lib/eval/wellfounded.ml: Datalog Engine Idb Relalg Saturate
