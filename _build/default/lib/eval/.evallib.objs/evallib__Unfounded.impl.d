lib/eval/unfounded.ml: Ground Idb List Relalg Set Wellfounded
