lib/eval/equiv.mli: Datalog Idb Relalg
