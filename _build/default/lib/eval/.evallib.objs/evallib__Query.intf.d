lib/eval/query.mli: Datalog Relalg
