lib/eval/dred.ml: Datalog Engine Ground Idb List Printf Relalg Saturate Set String
