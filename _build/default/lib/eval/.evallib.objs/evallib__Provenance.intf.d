lib/eval/provenance.mli: Datalog Format Ground Relalg
