lib/eval/fitting.mli: Datalog Ground Idb Relalg
