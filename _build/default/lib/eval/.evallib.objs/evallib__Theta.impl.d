lib/eval/theta.ml: Datalog Engine Idb Int List Relalg
