lib/eval/engine.mli: Datalog Idb Relalg
