lib/eval/theta.mli: Datalog Idb Relalg
