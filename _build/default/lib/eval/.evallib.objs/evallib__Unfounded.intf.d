lib/eval/unfounded.mli: Datalog Ground Idb Relalg Wellfounded
