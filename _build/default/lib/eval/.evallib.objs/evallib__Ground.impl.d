lib/eval/ground.ml: Array Datalog Format Hashtbl Idb List Map Option Printf Relalg String
