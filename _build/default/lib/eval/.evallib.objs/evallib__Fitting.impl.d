lib/eval/fitting.ml: Ground Idb List Relalg
