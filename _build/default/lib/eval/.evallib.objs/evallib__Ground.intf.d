lib/eval/ground.mli: Datalog Format Idb Relalg
