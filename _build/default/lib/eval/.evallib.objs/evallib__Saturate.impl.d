lib/eval/saturate.ml: Datalog Engine Idb List Relalg
