lib/eval/dred.mli: Datalog Idb Relalg
