lib/eval/inflationary.ml: Datalog Engine Idb Printf Relalg Saturate
