lib/eval/wellfounded.mli: Datalog Idb Relalg
