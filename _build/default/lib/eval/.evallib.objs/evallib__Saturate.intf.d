lib/eval/saturate.mli: Datalog Engine Idb Relalg
