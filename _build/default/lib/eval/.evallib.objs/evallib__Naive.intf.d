lib/eval/naive.mli: Datalog Idb Relalg Saturate
