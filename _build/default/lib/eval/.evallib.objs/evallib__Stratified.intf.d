lib/eval/stratified.mli: Datalog Idb Relalg
