lib/eval/engine.ml: Array Datalog Hashtbl Idb List Option Relalg
