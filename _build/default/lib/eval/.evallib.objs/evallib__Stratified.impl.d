lib/eval/stratified.ml: Datalog Engine Idb List Printf Relalg Saturate
