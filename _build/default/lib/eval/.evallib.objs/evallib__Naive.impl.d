lib/eval/naive.ml: Datalog Engine Idb Relalg Saturate
