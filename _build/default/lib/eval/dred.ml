module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Database = Relalg.Database

module GSet = Set.Make (struct
  type t = Ground.gatom

  let compare = Ground.compare_gatom
end)

type delta = {
  new_db : Database.t;
  new_idb : Idb.t;
  overdeleted : int;
  rederived : int;
}

let gatom pred tuple = { Ground.pred; tuple }

let delete_facts p db ~current ~removals =
  if not (Datalog.Ast.is_positive p) then
    invalid_arg "Dred.delete_facts: the program must be positive";
  let idb = Datalog.Ast.idb_predicates p in
  List.iter
    (fun (pred, tuple) ->
      if List.mem pred idb then
        invalid_arg
          (Printf.sprintf "Dred.delete_facts: %s is an IDB predicate" pred);
      if not (Database.mem_fact pred tuple db) then
        invalid_arg
          (Printf.sprintf "Dred.delete_facts: %s%s is not in the database"
             pred (Tuple.to_string tuple)))
    removals;
  (* Ground once on the old database, keeping the touched EDB predicates
     symbolic so instances expose their base-fact dependencies. *)
  let touched = List.sort_uniq String.compare (List.map fst removals) in
  let ground = Ground.ground ~keep:touched p db in
  let removed = GSet.of_list (List.map (fun (p, t) -> gatom p t) removals) in
  let instances =
    (* Instances still valid in the new database: none of their kept EDB
       subgoals were removed.  Their IDB subgoals are the rest. *)
    List.filter_map
      (fun (gr : Ground.grule) ->
        let kept_edb, idb_pos =
          List.partition
            (fun (a : Ground.gatom) -> List.mem a.Ground.pred touched)
            gr.Ground.pos
        in
        if List.exists (fun a -> GSet.mem a removed) kept_edb then None
        else Some (gr.Ground.head, idb_pos))
      (Ground.rules ground)
  in
  let holds idb (a : Ground.gatom) =
    Idb.mem idb a.Ground.pred
    && Relation.mem a.Ground.tuple (Idb.get idb a.Ground.pred)
  in
  (* Phase 1 — over-deletion: remove every materialised fact with a
     derivation touching a removed base fact, transitively (an
     over-approximation; phase 2 repairs it). *)
  let old_facts =
    List.fold_left
      (fun acc (pred, rel) ->
        Relation.fold (fun t acc -> GSet.add (gatom pred t) acc) rel acc)
      GSet.empty (Idb.bindings current)
  in
  let all_ground_rules = Ground.rules ground in
  let rec overdelete deleted =
    let grow =
      List.fold_left
        (fun acc (gr : Ground.grule) ->
          if
            GSet.mem gr.Ground.head old_facts
            && (not (GSet.mem gr.Ground.head acc))
            && List.exists
                 (fun (a : Ground.gatom) ->
                   GSet.mem a acc
                   || (List.mem a.Ground.pred touched && GSet.mem a removed))
                 gr.Ground.pos
          then GSet.add gr.Ground.head acc
          else acc)
        deleted all_ground_rules
    in
    if GSet.equal grow deleted then deleted else overdelete grow
  in
  let deleted = overdelete GSet.empty in
  let overdeleted = GSet.cardinal deleted in
  (* Survivors seed the re-derivation. *)
  let seed =
    GSet.fold
      (fun a acc ->
        Idb.set acc a.Ground.pred
          (Relation.remove a.Ground.tuple (Idb.get acc a.Ground.pred)))
      deleted current
  in
  (* Phase 2 — re-derive: iterate the still-valid instances from the
     survivors to a fixed point. *)
  let rec rederive current_idb added =
    let fresh =
      List.fold_left
        (fun acc (head, idb_pos) ->
          if
            (not (holds current_idb head))
            && List.for_all (holds current_idb) idb_pos
          then GSet.add head acc
          else acc)
        GSet.empty instances
    in
    if GSet.is_empty fresh then (current_idb, added)
    else
      let current_idb =
        GSet.fold
          (fun a acc -> Idb.add_fact acc a.Ground.pred a.Ground.tuple)
          fresh current_idb
      in
      rederive current_idb (added + GSet.cardinal fresh)
  in
  let new_idb, rederived = rederive seed 0 in
  let new_db =
    List.fold_left
      (fun db (pred, tuple) ->
        let r = Database.relation_or_empty ~arity:(Tuple.arity tuple) pred db in
        Database.set_relation pred (Relation.remove tuple r) db)
      db removals
  in
  { new_db; new_idb; overdeleted; rederived }

let insert_facts p db ~current ~additions =
  if not (Datalog.Ast.is_positive p) then
    invalid_arg "Dred.insert_facts: the program must be positive";
  let idb = Datalog.Ast.idb_predicates p in
  List.iter
    (fun (pred, _) ->
      if List.mem pred idb then
        invalid_arg
          (Printf.sprintf "Dred.insert_facts: %s is an IDB predicate" pred))
    additions;
  let new_db =
    List.fold_left
      (fun db (pred, tuple) ->
        let db =
          Database.add_universe (Tuple.to_list tuple) db
        in
        Database.add_fact pred tuple db)
      db additions
  in
  let schema = Idb.schema current in
  let trace =
    Saturate.run ~rules:p.Datalog.Ast.rules ~schema
      ~universe:(Database.universe new_db)
      ~base:(Engine.database_source new_db)
      ~neg:`Current ~init:current ()
  in
  {
    new_db;
    new_idb = trace.Saturate.result;
    overdeleted = 0;
    rederived = Idb.total_cardinal trace.Saturate.result - Idb.total_cardinal current;
  }
