(** Incremental view maintenance under deletions (DRed, delete-and-rederive).

    Given a positive program, a database, its materialised least fixpoint
    and a set of base facts to delete, DRed avoids recomputing from
    scratch:

    + {e over-delete}: transitively remove every derived fact that has a
      derivation touching a deleted base fact;
    + {e re-derive}: run semi-naive evaluation seeded with the surviving
      facts against the shrunken database; alternative derivations bring
      back what was over-deleted.

    The result equals the least fixpoint on the new database — the test
    suite checks this against full recomputation on random instances. *)

type delta = {
  new_db : Relalg.Database.t;
  new_idb : Idb.t;
  overdeleted : int;  (** Facts removed in phase 1. *)
  rederived : int;  (** Facts re-derived in phase 2. *)
}

val delete_facts :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  current:Idb.t ->
  removals:(string * Relalg.Tuple.t) list ->
  delta
(** [delete_facts p db ~current ~removals] maintains [current] (which must
    be the least fixpoint of [p] on [db]) after deleting the EDB facts
    [removals].
    @raise Invalid_argument if the program is not positive, or a removal
    names an IDB predicate or a fact absent from the database. *)

val insert_facts :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  current:Idb.t ->
  additions:(string * Relalg.Tuple.t) list ->
  delta
(** Maintenance under insertions — the easy monotone direction: semi-naive
    iteration continues from [current] on the enlarged database ([rederived]
    counts the new facts; [overdeleted] is 0).  Constants new to the
    universe are admitted.
    @raise Invalid_argument if the program is not positive or an addition
    names an IDB predicate. *)
