(** Provenance: why is this fact in the inflationary semantics?

    For a fact derived by the inflationary iteration, a justification is a
    ground rule instance that fired at the fact's entry stage: all its
    positive subgoals had already entered at strictly earlier stages (each
    with a justification of its own) and none of its negated subgoals had
    entered yet.  Because the inflationary semantics never retracts, the
    resulting tree is a complete, replayable explanation — with the caveat,
    faithfully recorded, that a negated subgoal may have become true
    {e later}; that is exactly the non-monotonicity the paper's Section 4
    examples turn on. *)

type justification = {
  fact : Ground.gatom;
  stage : int;  (** 1-based stage at which the fact entered. *)
  instance : Ground.grule;  (** The firing ground instance. *)
  supports : justification list;
      (** One sub-justification per positive subgoal. *)
  absences : (Ground.gatom * int option) list;
      (** Negated subgoals, each with the stage at which it {e eventually}
          entered ([None] = never) — necessarily >= the fact's stage. *)
}

val explain :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  pred:string ->
  Relalg.Tuple.t ->
  justification option
(** [None] when the fact is not in the inflationary semantics. *)

val check : justification -> bool
(** Internal consistency: supports at strictly earlier stages, absences not
    earlier than the fact, instance head matches. *)

val to_string : justification -> string
(** The rendered tree, newline-separated, no trailing newline. *)

val pp : Format.formatter -> justification -> unit
(** An indented tree, e.g.:
    {v
    s(v0, v2) @ stage 2
      by s(v0, v2) :- e(v0, v1), s(v1, v2).
      s(v1, v2) @ stage 1
        by s(v1, v2) :- e(v1, v2).
    v} *)
