(** The well-founded semantics via greatest unfounded sets
    (Van Gelder-Ross-Schlipf) — an independent second algorithm.

    [Wellfounded] computes the well-founded model with the alternating
    fixpoint; this module computes it the original way: iterate

    W(T, F) = (immediate consequences w.r.t. (T, F),
               F union the greatest unfounded set w.r.t. (T, F))

    where a set U of atoms is {e unfounded} w.r.t. (T, F) when every
    instance deriving a member of U is blocked — some positive subgoal
    falls in F or in U itself, or some negated subgoal is in T.  The
    greatest unfounded set is computed by complement: the atoms with a
    non-circular line of support survive (a least fixpoint), the rest are
    unfounded.

    The two algorithms provably compute the same model; the test suite
    checks that they agree on random programs, which validates both
    implementations at once. *)

val eval : Datalog.Ast.program -> Relalg.Database.t -> Wellfounded.model

val eval_ground : Ground.t -> Wellfounded.model

val greatest_unfounded_set :
  Ground.t -> true_facts:Idb.t -> false_facts:Idb.t -> Ground.gatom list
(** The greatest unfounded set w.r.t. a partial interpretation, exposed for
    direct testing (e.g. a positive loop with no external support is
    unfounded from the start). *)
