module Schema = Relalg.Schema

type trace = {
  result : Idb.t;
  deltas : Idb.t list;
}

let stages t = List.length t.deltas

let stage_of t pred tuple =
  let rec find n = function
    | [] -> None
    | d :: rest ->
      if Idb.mem d pred && Relalg.Relation.mem tuple (Idb.get d pred) then
        Some n
      else find (n + 1) rest
  in
  find 1 t.deltas

let make_resolver ~schema ~base ~neg ~current ~delta_occ ~delta
    (occ : Engine.occurrence) =
  if Schema.mem occ.pred schema then
    match occ.polarity with
    | `Neg -> (
      match neg with
      | `Current -> { Engine.find = (fun p _a -> Idb.get current p) }
      | `Fixed src -> src)
    | `Pos -> (
      match delta_occ with
      | Some j when occ.index = j ->
        { Engine.find = (fun p _a -> Idb.get delta p) }
      | _ -> { Engine.find = (fun p _a -> Idb.get current p) })
  else base

(* Positive body occurrences of evolving predicates, as literal indices. *)
let delta_positions ~schema (rule : Datalog.Ast.rule) =
  List.mapi (fun i l -> (i, l)) rule.body
  |> List.filter_map (fun (i, l) ->
         match l with
         | Datalog.Ast.Pos a when Schema.mem a.pred schema -> Some i
         | _ -> None)

let full_application ~rules ~schema ~universe ~base ~neg ~current =
  let resolver =
    make_resolver ~schema ~base ~neg ~current ~delta_occ:None
      ~delta:current
  in
  Engine.eval_rules ~universe ~resolver ~schema rules

let delta_application ~rules ~schema ~universe ~base ~neg ~current ~delta =
  List.fold_left
    (fun acc rule ->
      let positions = delta_positions ~schema rule in
      List.fold_left
        (fun acc j ->
          let resolver =
            make_resolver ~schema ~base ~neg ~current ~delta_occ:(Some j)
              ~delta
          in
          let derived = Engine.eval_rule ~universe ~resolver rule in
          let name = rule.Datalog.Ast.head.pred in
          let old =
            if Idb.mem acc name then Idb.get acc name
            else Relalg.Relation.empty (Relalg.Relation.arity derived)
          in
          Idb.set acc name (Relalg.Relation.union old derived))
        acc positions)
    (Idb.empty schema) rules

let run ?(engine = `Seminaive) ~rules ~schema ~universe ~base ~neg ~init () =
  match engine with
  | `Naive ->
    let rec loop current rev_deltas =
      let derived =
        full_application ~rules ~schema ~universe ~base ~neg ~current
      in
      let delta = Idb.diff derived current in
      if Idb.is_empty delta then
        { result = current; deltas = List.rev rev_deltas }
      else loop (Idb.union current delta) (delta :: rev_deltas)
    in
    loop init []
  | `Seminaive ->
    (* Stage 1 applies every rule in full; later stages only chase the
       previous stage's delta through positive evolving literals. *)
    let derived =
      full_application ~rules ~schema ~universe ~base ~neg ~current:init
    in
    let delta1 = Idb.diff derived init in
    if Idb.is_empty delta1 then { result = init; deltas = [] }
    else
      let rec loop current delta rev_deltas =
        let derived =
          delta_application ~rules ~schema ~universe ~base ~neg ~current
            ~delta
        in
        let fresh = Idb.diff derived current in
        if Idb.is_empty fresh then
          { result = current; deltas = List.rev rev_deltas }
        else loop (Idb.union current fresh) fresh (fresh :: rev_deltas)
      in
      loop (Idb.union init delta1) delta1 [ delta1 ]
