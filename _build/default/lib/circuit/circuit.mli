(** Boolean circuits in the paper's triple encoding.

    A circuit is a finite sequence of gates (a{_i}, b{_i}, c{_i}) where
    a{_i} is the kind (IN, AND, OR, NOT) and b{_i}, c{_i} < i are the
    gate's inputs (for IN gates b = c = 0; for NOT gates b = c).  Given
    values for the input gates, every gate's value is computed in order and
    the value of the circuit is the value of the {e last} gate
    (Section 3 of the paper, before Lemma 2). *)

type gate =
  | In
  | And of int * int
  | Or of int * int
  | Not of int

type t

val create : gate array -> t
(** Validates the wiring: every gate's inputs must point to earlier gates.
    @raise Invalid_argument on a forward or self reference. *)

val gates : t -> gate array
(** Fresh copy. *)

val num_gates : t -> int

val num_inputs : t -> int

val input_indices : t -> int array
(** The positions of the IN gates, in order; the j-th circuit input is fed
    to gate [input_indices c .(j)]. *)

val eval_all : t -> bool array -> bool array
(** [eval_all c inputs] computes every gate's value; [inputs] has one entry
    per IN gate in order.
    @raise Invalid_argument on an input count mismatch. *)

val eval : t -> bool array -> bool
(** Value of the last gate. *)

val triples : t -> (string * int * int) list
(** The paper's explicit triple list ((kind, b, c) with 0-based indices,
    kind in {"IN", "AND", "OR", "NOT"}), for display and serialisation. *)

val pp : Format.formatter -> t -> unit
