module Cnf = Satlib.Cnf
module Solver = Satlib.Solver

let clauses_of_gate var i g =
  let v = var i in
  match g with
  | Circuit.In -> []
  | Circuit.And (b, c) ->
    let vb = var b and vc = var c in
    [ [ -v; vb ]; [ -v; vc ]; [ v; -vb; -vc ] ]
  | Circuit.Or (b, c) ->
    let vb = var b and vc = var c in
    [ [ v; -vb ]; [ v; -vc ]; [ -v; vb; vc ] ]
  | Circuit.Not b ->
    let vb = var b in
    [ [ -v; -vb ]; [ v; vb ] ]

let to_cnf_with_offset offset c =
  (* Gate i gets variable offset + i + 1. *)
  let var i = offset + i + 1 in
  let gates = Circuit.gates c in
  let clauses =
    Array.to_list gates
    |> List.mapi (fun i g -> clauses_of_gate var i g)
    |> List.concat
  in
  let input_vars = Array.map var (Circuit.input_indices c) in
  let output_var = var (Circuit.num_gates c - 1) in
  (clauses, input_vars, output_var)

let to_cnf c =
  let clauses, input_vars, output_var = to_cnf_with_offset 0 c in
  let cnf = Cnf.of_list (Circuit.num_gates c) clauses in
  (cnf, input_vars, output_var)

let satisfiable_output c =
  let cnf, _inputs, out = to_cnf c in
  Solver.is_satisfiable (Cnf.add_clause cnf [ out ])

let equivalent c1 c2 =
  if Circuit.num_inputs c1 <> Circuit.num_inputs c2 then
    invalid_arg "Tseitin.equivalent: input counts differ";
  let cl1, in1, out1 = to_cnf_with_offset 0 c1 in
  let n1 = Circuit.num_gates c1 in
  let cl2, in2, out2 = to_cnf_with_offset n1 c2 in
  let total = n1 + Circuit.num_gates c2 in
  let cnf = Cnf.of_list total (cl1 @ cl2) in
  (* Tie the inputs together. *)
  let cnf =
    Array.to_list (Array.map2 (fun a b -> (a, b)) in1 in2)
    |> List.fold_left
         (fun cnf (a, b) ->
           Cnf.add_clause (Cnf.add_clause cnf [ -a; b ]) [ a; -b ])
         cnf
  in
  (* Ask for differing outputs; equivalence = UNSAT. *)
  let cnf =
    Cnf.add_clause (Cnf.add_clause cnf [ out1; out2 ]) [ -out1; -out2 ]
  in
  not (Solver.is_satisfiable cnf)
