(** Tseitin translation of circuits to CNF.

    One propositional variable per gate; three or fewer clauses per gate
    encode its semantics.  Used to cross-check the circuit evaluator against
    the SAT solver and to decide properties of succinctly presented graphs
    without expanding them. *)

val to_cnf : Circuit.t -> Satlib.Cnf.t * int array * int
(** [to_cnf c] is [(cnf, input_vars, output_var)]: [cnf] is satisfied
    exactly by the assignments that are consistent gate valuations of [c];
    [input_vars.(j)] is the variable of the j-th input; [output_var] is the
    variable of the last gate. *)

val satisfiable_output : Circuit.t -> bool
(** Is there an input vector making the circuit output true? *)

val equivalent : Circuit.t -> Circuit.t -> bool
(** Do two circuits with the same number of inputs compute the same
    function?  Decided by SAT on a miter construction. *)
