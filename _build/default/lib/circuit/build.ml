type wire = int

type ctx = { mutable rev_gates : Circuit.gate list; mutable size : int }

let create () = { rev_gates = []; size = 0 }

let push ctx g =
  ctx.rev_gates <- g :: ctx.rev_gates;
  let w = ctx.size in
  ctx.size <- ctx.size + 1;
  w

let input ctx = push ctx Circuit.In

let inputs ctx n = List.init n (fun _ -> input ctx)

let band ctx a b = push ctx (Circuit.And (a, b))

let bor ctx a b = push ctx (Circuit.Or (a, b))

let bnot ctx a = push ctx (Circuit.Not a)

let bxor ctx a b =
  let left = band ctx a (bnot ctx b) in
  let right = band ctx (bnot ctx a) b in
  bor ctx left right

let biff ctx a b = bnot ctx (bxor ctx a b)

let btrue ctx =
  if ctx.size = 0 then
    invalid_arg "Build.btrue: the circuit encoding needs at least one gate";
  bor ctx 0 (bnot ctx 0)

let bfalse ctx = bnot ctx (btrue ctx)

let band_list ctx = function
  | [] -> btrue ctx
  | w :: ws -> List.fold_left (band ctx) w ws

let bor_list ctx = function
  | [] -> bfalse ctx
  | w :: ws -> List.fold_left (bor ctx) w ws

let finish ctx w =
  let w =
    if w = ctx.size - 1 then w
    else
      (* Append a copy gate so the chosen wire becomes the last gate. *)
      bor ctx w w
  in
  ignore w;
  Circuit.create (Array.of_list (List.rev ctx.rev_gates))
