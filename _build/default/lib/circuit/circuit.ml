type gate =
  | In
  | And of int * int
  | Or of int * int
  | Not of int

type t = { gates : gate array; inputs : int array }

let create gates =
  let check i j =
    if j < 0 || j >= i then
      invalid_arg
        (Printf.sprintf "Circuit.create: gate %d reads gate %d (must be < %d)"
           i j i)
  in
  Array.iteri
    (fun i g ->
      match g with
      | In -> ()
      | And (b, c) | Or (b, c) ->
        check i b;
        check i c
      | Not b -> check i b)
    gates;
  let inputs =
    Array.to_list gates
    |> List.mapi (fun i g -> (i, g))
    |> List.filter_map (fun (i, g) -> match g with In -> Some i | _ -> None)
    |> Array.of_list
  in
  { gates = Array.copy gates; inputs }

let gates c = Array.copy c.gates

let num_gates c = Array.length c.gates

let num_inputs c = Array.length c.inputs

let input_indices c = Array.copy c.inputs

let eval_all c inputs =
  if Array.length inputs <> Array.length c.inputs then
    invalid_arg
      (Printf.sprintf "Circuit.eval_all: expected %d inputs, got %d"
         (Array.length c.inputs) (Array.length inputs));
  let n = Array.length c.gates in
  let values = Array.make n false in
  let next_input = ref 0 in
  for i = 0 to n - 1 do
    values.(i) <-
      (match c.gates.(i) with
      | In ->
        let v = inputs.(!next_input) in
        incr next_input;
        v
      | And (b, cc) -> values.(b) && values.(cc)
      | Or (b, cc) -> values.(b) || values.(cc)
      | Not b -> not values.(b))
  done;
  values

let eval c inputs =
  let n = num_gates c in
  if n = 0 then invalid_arg "Circuit.eval: empty circuit"
  else (eval_all c inputs).(n - 1)

let triples c =
  Array.to_list c.gates
  |> List.map (fun g ->
         match g with
         | In -> ("IN", 0, 0)
         | And (b, cc) -> ("AND", b, cc)
         | Or (b, cc) -> ("OR", b, cc)
         | Not b -> ("NOT", b, b))

let pp ppf c =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (kind, b, cc) ->
      Format.fprintf ppf "g%d = %s(%d, %d)@," i kind b cc)
    (triples c);
  Format.fprintf ppf "@]"
