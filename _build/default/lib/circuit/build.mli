(** A combinator layer for constructing circuits.

    The raw triple encoding of {!Circuit} is awkward to produce by hand;
    this builder hands out wires and appends gates, and {!finish} seals the
    circuit with the chosen wire as the output (the last gate).  Derived
    gates (xor, equality, multi-way and/or, constants) are expanded into the
    four primitive kinds, since the paper's encoding has no others. *)

type ctx

type wire

val create : unit -> ctx

val input : ctx -> wire
(** Appends an IN gate.  Inputs are ordered by creation time. *)

val inputs : ctx -> int -> wire list

val band : ctx -> wire -> wire -> wire

val bor : ctx -> wire -> wire -> wire

val bnot : ctx -> wire -> wire

val bxor : ctx -> wire -> wire -> wire

val biff : ctx -> wire -> wire -> wire
(** Equality of two wires. *)

val btrue : ctx -> wire
(** A constant-true wire ([w | ~w] over the first input).
    @raise Invalid_argument if no input exists yet. *)

val bfalse : ctx -> wire

val band_list : ctx -> wire list -> wire
(** Conjunction; the empty conjunction is {!btrue}. *)

val bor_list : ctx -> wire list -> wire
(** Disjunction; the empty disjunction is {!bfalse}. *)

val finish : ctx -> wire -> Circuit.t
(** Seals the circuit with the given wire as output, appending a copy gate
    if that wire is not already last.  The context must not be used
    afterwards. *)
