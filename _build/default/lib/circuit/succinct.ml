type t = { bits : int; circuit : Circuit.t }

let make ~bits circuit =
  if Circuit.num_inputs circuit <> 2 * bits then
    invalid_arg
      (Printf.sprintf "Succinct.make: circuit has %d inputs, expected %d"
         (Circuit.num_inputs circuit) (2 * bits));
  { bits; circuit }

let bits sg = sg.bits

let circuit sg = sg.circuit

let node_count sg = 1 lsl sg.bits

let bit u j = (u lsr j) land 1 = 1

let encode_pair n u v =
  Array.init (2 * n) (fun i -> if i < n then bit u i else bit v (i - n))

let has_edge sg u v = Circuit.eval sg.circuit (encode_pair sg.bits u v)

let expand sg =
  let n = node_count sg in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if has_edge sg u v then edges := (u, v) :: !edges
    done
  done;
  Graphlib.Digraph.make n !edges

let rec bits_needed n = if n <= 1 then 0 else 1 + bits_needed ((n + 1) / 2)

let of_explicit g =
  let vcount = Graphlib.Digraph.vertex_count g in
  let n = max 1 (bits_needed vcount) in
  let ctx = Build.create () in
  let xs = Build.inputs ctx n in
  let ys = Build.inputs ctx n in
  let match_node wires u =
    Build.band_list ctx
      (List.mapi
         (fun j w -> if bit u j then w else Build.bnot ctx w)
         wires)
  in
  let edge_wire (u, v) =
    Build.band ctx (match_node xs u) (match_node ys v)
  in
  let out = Build.bor_list ctx (List.map edge_wire (Graphlib.Digraph.edges g)) in
  make ~bits:n (Build.finish ctx out)

let hypercube n =
  if n < 1 then invalid_arg "Succinct.hypercube: need n >= 1";
  let ctx = Build.create () in
  let xs = Build.inputs ctx n in
  let ys = Build.inputs ctx n in
  let diff = List.map2 (fun x y -> Build.bxor ctx x y) xs ys in
  (* Exactly one position differs: some position differs, and no two do. *)
  let some = Build.bor_list ctx diff in
  let rec pairs = function
    | [] -> []
    | d :: rest -> List.map (fun d' -> (d, d')) rest @ pairs rest
  in
  let no_two =
    Build.band_list ctx
      (List.map
         (fun (d, d') -> Build.bnot ctx (Build.band ctx d d'))
         (pairs diff))
  in
  make ~bits:n (Build.finish ctx (Build.band ctx some no_two))

let complete n =
  if n < 1 then invalid_arg "Succinct.complete: need n >= 1";
  let ctx = Build.create () in
  let xs = Build.inputs ctx n in
  let ys = Build.inputs ctx n in
  let diff = List.map2 (fun x y -> Build.bxor ctx x y) xs ys in
  make ~bits:n (Build.finish ctx (Build.bor_list ctx diff))

let empty n =
  if n < 1 then invalid_arg "Succinct.empty: need n >= 1";
  let ctx = Build.create () in
  let _ = Build.inputs ctx (2 * n) in
  make ~bits:n (Build.finish ctx (Build.bfalse ctx))
