lib/circuit/tseitin.mli: Circuit Satlib
