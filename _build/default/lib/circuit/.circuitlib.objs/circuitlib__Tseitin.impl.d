lib/circuit/tseitin.ml: Array Circuit List Satlib
