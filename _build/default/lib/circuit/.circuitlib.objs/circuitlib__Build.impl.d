lib/circuit/build.ml: Array Circuit List
