lib/circuit/build.mli: Circuit
