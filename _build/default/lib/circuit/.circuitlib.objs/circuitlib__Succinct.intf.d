lib/circuit/succinct.mli: Circuit Graphlib
