lib/circuit/succinct.ml: Array Build Circuit Graphlib List Printf
