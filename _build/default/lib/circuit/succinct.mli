(** Succinctly presented graphs (Theorem 4's input format).

    The nodes of the graph are the elements of [{0,1}]{^ n}; instead of an
    explicit edge relation there is a Boolean circuit with 2n inputs whose
    output is 1 exactly on the pairs of n-tuples joined by an edge.  A
    circuit of size polynomial in [n] can thus present a graph of size
    2{^ n} — the exponential succinctness behind the NEXP-completeness of
    Theorem 4. *)

type t

val make : bits:int -> Circuit.t -> t
(** [make ~bits c] wraps a circuit with [2 * bits] inputs.  The first
    [bits] inputs carry the source node x, the last [bits] the target y;
    bit j of a node index [u] is [(u lsr j) land 1].
    @raise Invalid_argument if the circuit has a different input count. *)

val bits : t -> int

val circuit : t -> Circuit.t

val node_count : t -> int
(** [2 ^ bits]. *)

val has_edge : t -> int -> int -> bool
(** Evaluates the circuit on the bit representation of the node pair. *)

val expand : t -> Graphlib.Digraph.t
(** The explicit graph: 2{^ bits} vertices, all 4{^ bits} candidate pairs
    evaluated.  Exponential; only for small [bits]. *)

val of_explicit : Graphlib.Digraph.t -> t
(** A succinct presentation of an explicit graph: the circuit is a
    disjunction over the edges of bit-pattern matches.  Vertices beyond the
    next power of two are absent (the wrapped graph is padded with isolated
    nodes). *)

val hypercube : int -> t
(** [hypercube n]: nodes [{0,1}]{^ n}, edges between words at Hamming
    distance one — a natural family whose explicit form is exponentially
    larger than its circuit. *)

val complete : int -> t
(** [complete n]: an edge between every pair of distinct nodes. *)

val empty : int -> t
(** No edges. *)
