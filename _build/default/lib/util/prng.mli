(** Deterministic pseudo-random number generator (splitmix64).

    All random workloads in the repository (random graphs, random CNFs,
    benchmark inputs) draw from this generator with explicit seeds, so every
    experiment is reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed] starts a generator; equal seeds give equal streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [0 .. bound-1]; [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val split : t -> t
(** A statistically independent generator derived from the current state. *)
