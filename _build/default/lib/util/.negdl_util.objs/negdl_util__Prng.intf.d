lib/util/prng.mli:
