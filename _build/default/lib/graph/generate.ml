let path n =
  Digraph.make n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 1 then invalid_arg "Generate.cycle: need n >= 1";
  let wrap = (n - 1, 0) in
  Digraph.make n (wrap :: List.init (n - 1) (fun i -> (i, i + 1)))

let disjoint_copies k g =
  let rec loop acc i =
    if i = k then acc else loop (Digraph.disjoint_union acc g) (i + 1)
  in
  if k < 1 then invalid_arg "Generate.disjoint_copies: need k >= 1";
  loop g 1

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  Digraph.make n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Digraph.make (a + b) !edges

let star n =
  Digraph.make n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid rows cols =
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Digraph.make n !edges

let binary_tree depth =
  let n = (1 lsl depth) - 1 in
  let edges = ref [] in
  for v = 0 to n - 1 do
    let left = (2 * v) + 1 and right = (2 * v) + 2 in
    if left < n then edges := (v, left) :: !edges;
    if right < n then edges := (v, right) :: !edges
  done;
  Digraph.make n !edges

let random ~seed ~n ~p =
  let rng = Negdl_util.Prng.create seed in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Negdl_util.Prng.float rng < p then
        edges := (u, v) :: !edges
    done
  done;
  Digraph.make n !edges

let random_edges ~seed ~n ~m =
  if m > n * (n - 1) then invalid_arg "Generate.random_edges: too many edges";
  let rng = Negdl_util.Prng.create seed in
  let module EdgeSet = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let rec loop acc =
    if EdgeSet.cardinal acc = m then acc
    else
      let u = Negdl_util.Prng.int rng n in
      let v = Negdl_util.Prng.int rng n in
      if u <> v then loop (EdgeSet.add (u, v) acc) else loop acc
  in
  Digraph.make n (EdgeSet.elements (loop EdgeSet.empty))
