(** Graph colorability — the baseline for Theorem 4's constructions.

    Colorings concern the underlying undirected graph: an edge (u, v) in
    either direction forbids [color u = color v].  Self-loops make a graph
    uncolorable. *)

val find_coloring : k:int -> Digraph.t -> int array option
(** A proper [k]-coloring (array of colors in [0..k-1]) found by
    backtracking with most-constrained-vertex ordering, or [None]. *)

val is_colorable : k:int -> Digraph.t -> bool

val is_3colorable : Digraph.t -> bool

val check_coloring : k:int -> Digraph.t -> int array -> bool
(** Is the given assignment a proper [k]-coloring? *)

val count_colorings : k:int -> Digraph.t -> int
(** Number of proper [k]-colorings (exponential; small graphs only). *)

val chromatic_number : Digraph.t -> int
(** Smallest [k] with a proper [k]-coloring (0 for the empty graph). *)
