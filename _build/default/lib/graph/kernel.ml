let is_kernel g k =
  let n = Digraph.vertex_count g in
  let in_k = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Kernel.is_kernel: bad vertex";
      in_k.(v) <- true)
    k;
  let independent =
    List.for_all
      (fun (u, v) -> not (in_k.(u) && in_k.(v)))
      (Digraph.edges g)
  in
  let absorbing =
    List.for_all
      (fun v ->
        in_k.(v) || List.exists (fun w -> in_k.(w)) (Digraph.succ g v))
      (Digraph.vertices g)
  in
  independent && absorbing

let kernels g =
  let n = Digraph.vertex_count g in
  if n > 22 then
    invalid_arg "Kernel.kernels: graph too large for exhaustive search";
  let result = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let k =
      List.filter (fun v -> (mask lsr v) land 1 = 1) (Digraph.vertices g)
    in
    if is_kernel g k then result := k :: !result
  done;
  List.rev !result

let count g = List.length (kernels g)

let has_kernel g = kernels g <> []
