(** Graph kernels (von Neumann-Morgenstern solutions).

    A kernel of a digraph is an independent set K such that every vertex
    outside K has an edge into K.  Kernels connect directly to the paper's
    running example: T is a fixpoint of pi_1 = [T(x) <- E(y,x), not T(y)]
    on G exactly when the complement of T is a kernel of the {e reversed}
    graph — so the Section 2 census (unique kernel on paths, none on odd
    cycles, two on even cycles, 2^k on disjoint even cycles) is the classic
    kernel census.  This module is the independent combinatorial baseline
    for that correspondence. *)

val is_kernel : Digraph.t -> int list -> bool
(** [is_kernel g k]: is the vertex set [k] independent (no edge joins two
    of its members, in either direction within the edge set of [g]) and
    absorbing (every vertex outside has a successor inside)? *)

val kernels : Digraph.t -> int list list
(** All kernels, by exhaustive search (vertex sets as sorted lists).
    Exponential; refuses graphs with more than 22 vertices. *)

val count : Digraph.t -> int

val has_kernel : Digraph.t -> bool
