(** Graph generators for the paper's workloads.

    The paper's Section 2 example uses the directed path L{_n} (vertices
    1..n, edges i -> i+1) and the directed cycle C{_n} (same plus n -> 1);
    G{_n} is the disjoint union of n copies of C{_n}.  We use 0-based
    vertices throughout: L{_n} has edges i -> i+1 for 0 <= i < n-1. *)

val path : int -> Digraph.t
(** [path n] is the directed path L{_n} on [n] vertices. *)

val cycle : int -> Digraph.t
(** [cycle n] is the directed cycle C{_n} on [n] vertices ([n >= 1]). *)

val disjoint_copies : int -> Digraph.t -> Digraph.t
(** [disjoint_copies k g] is k vertex-disjoint copies of [g]. *)

val complete : int -> Digraph.t
(** [complete n] has every edge u -> v with u <> v (so its undirected view is
    K{_n}). *)

val complete_bipartite : int -> int -> Digraph.t
(** [complete_bipartite a b]: all edges from the first [a] vertices to the
    last [b]. *)

val star : int -> Digraph.t
(** [star n]: edges from vertex 0 to each of 1..n-1. *)

val grid : int -> int -> Digraph.t
(** [grid rows cols]: edges rightwards and downwards. *)

val binary_tree : int -> Digraph.t
(** [binary_tree depth]: complete binary tree, edges parent -> child. *)

val random : seed:int -> n:int -> p:float -> Digraph.t
(** Erdos-Renyi style digraph: each ordered pair (u, v), u <> v, is an edge
    with probability [p], decided by a deterministic PRNG seeded with
    [seed]. *)

val random_edges : seed:int -> n:int -> m:int -> Digraph.t
(** [random_edges ~seed ~n ~m] picks [m] distinct random edges. *)
