(** Hamilton circuits.

    The paper cites "does a graph have a unique Hamilton circuit?" as a
    typical member of the class US; this module provides the exhaustive
    baseline used to exercise that discussion on small graphs. *)

val circuits : Digraph.t -> int list list
(** All directed Hamilton circuits, each normalised to start at vertex 0 and
    returned as the vertex sequence [0; v1; ...; v(n-1)] (the closing edge
    back to 0 is implicit).  Exponential; small graphs only. *)

val count : Digraph.t -> int

val has_circuit : Digraph.t -> bool

val has_unique_circuit : Digraph.t -> bool
