let adjacency g =
  let n = Digraph.vertex_count g in
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) (Digraph.edges g);
  Array.map List.rev adj

let bfs_from adj n s =
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      adj.(u)
  done;
  dist

let bfs_distances g s =
  let n = Digraph.vertex_count g in
  if s < 0 || s >= n then invalid_arg "Traverse.bfs_distances: bad source";
  bfs_from (adjacency g) n s

let distance g u v =
  let d = (bfs_distances g u).(v) in
  if d < 0 then None else Some d

let distance_matrix g =
  let n = Digraph.vertex_count g in
  let adj = adjacency g in
  Array.init n (fun s -> bfs_from adj n s)

let positive_distance g u v =
  let n = Digraph.vertex_count g in
  let adj = adjacency g in
  (* Shortest non-empty path: one edge u -> w, then a possibly-empty path
     w -> v. *)
  let best = ref max_int in
  List.iter
    (fun w ->
      let d = (bfs_from adj n w).(v) in
      if d >= 0 && d + 1 < !best then best := d + 1)
    adj.(u);
  if !best = max_int then None else Some !best

let transitive_closure g =
  let n = Digraph.vertex_count g in
  (* Warshall on the boolean adjacency matrix. *)
  let reach = Array.make_matrix n n false in
  List.iter (fun (u, v) -> reach.(u).(v) <- true) (Digraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if reach.(i).(j) then edges := (i, j) :: !edges
    done
  done;
  Digraph.make n !edges

let reachable g u v = positive_distance g u v <> None

let distance_query g x y x' y' =
  match positive_distance g x y with
  | None -> false
  | Some dxy -> (
    match positive_distance g x' y' with
    | None -> true
    | Some dxy' -> dxy <= dxy')

let topological_order g =
  let n = Digraph.vertex_count g in
  let adj = adjacency g in
  let indeg = Array.make n 0 in
  Array.iter (fun vs -> List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) vs) adj;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr seen;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      adj.(u)
  done;
  if !seen = n then Some (List.rev !order) else None

let is_acyclic g = topological_order g <> None
