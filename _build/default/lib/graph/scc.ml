type result = { count : int; component : int array }

let compute g =
  let n = Digraph.vertex_count g in
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) (Digraph.edges g);
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  (* Iterative Tarjan with an explicit work stack to survive large graphs. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          if lowlink.(w) < lowlink.(v) then lowlink.(v) <- lowlink.(w)
        end
        else if on_stack.(w) && index.(w) < lowlink.(v) then
          lowlink.(v) <- index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !comp_count in
      incr comp_count;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          component.(w) <- c;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  { count = !comp_count; component }

let components g =
  let { count; component } = compute g in
  let buckets = Array.make count [] in
  let n = Digraph.vertex_count g in
  for v = n - 1 downto 0 do
    buckets.(component.(v)) <- v :: buckets.(component.(v))
  done;
  (* Tarjan numbers components in reverse topological order; flip it. *)
  List.rev (Array.to_list buckets)

let condensation g =
  let { count; component } = compute g in
  (* Renumber so that component ids increase along edges (topological). *)
  let renumber c = count - 1 - c in
  let mapped = Array.map renumber component in
  let edges =
    Digraph.edges g
    |> List.filter_map (fun (u, v) ->
           let cu = mapped.(u) and cv = mapped.(v) in
           if cu = cv then None else Some (cu, cv))
  in
  (Digraph.make count edges, mapped)
