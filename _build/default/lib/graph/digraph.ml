module Edge = struct
  type t = int * int

  let compare = compare
end

module ESet = Set.Make (Edge)

type t = { n : int; edge_set : ESet.t }

let make n edges =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Digraph.make: edge (%d, %d) outside 0..%d" u v
             (n - 1)))
    edges;
  { n; edge_set = ESet.of_list edges }

let vertex_count g = g.n

let edge_count g = ESet.cardinal g.edge_set

let edges g = ESet.elements g.edge_set

let has_edge g u v = ESet.mem (u, v) g.edge_set

let succ g u =
  ESet.fold (fun (a, b) acc -> if a = u then b :: acc else acc) g.edge_set []
  |> List.rev

let pred g v =
  ESet.fold (fun (a, b) acc -> if b = v then a :: acc else acc) g.edge_set []
  |> List.rev

let vertices g = List.init g.n Fun.id

let add_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Digraph.add_edge: endpoint outside vertex range";
  { g with edge_set = ESet.add (u, v) g.edge_set }

let reverse g =
  { g with edge_set = ESet.map (fun (u, v) -> (v, u)) g.edge_set }

let union g1 g2 =
  if g1.n <> g2.n then invalid_arg "Digraph.union: vertex counts differ";
  { n = g1.n; edge_set = ESet.union g1.edge_set g2.edge_set }

let disjoint_union g1 g2 =
  let shifted =
    ESet.map (fun (u, v) -> (u + g1.n, v + g1.n)) g2.edge_set
  in
  { n = g1.n + g2.n; edge_set = ESet.union g1.edge_set shifted }

let undirected_view g = union g (reverse g)

let equal g1 g2 = g1.n = g2.n && ESet.equal g1.edge_set g2.edge_set

let pp ppf g =
  Format.fprintf ppf "@[<hov>graph(%d){%a}@]" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d->%d" u v))
    (edges g)

let vertex_symbol ?(universe_prefix = "v") i =
  Relalg.Symbol.intern (universe_prefix ^ string_of_int i)

let to_database ?(universe_prefix = "v") ?(pred = "e") g =
  let sym = vertex_symbol ~universe_prefix in
  let db =
    Relalg.Database.create ~universe:(List.map sym (vertices g))
  in
  List.fold_left
    (fun db (u, v) ->
      Relalg.Database.add_fact pred (Relalg.Tuple.pair (sym u) (sym v)) db)
    db (edges g)
