let circuits g =
  let n = Digraph.vertex_count g in
  if n = 0 then []
  else begin
    let adj = Array.make n [] in
    List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) (Digraph.edges g);
    let adj = Array.map (List.sort Int.compare) adj in
    let visited = Array.make n false in
    let found = ref [] in
    let rec extend path u depth =
      if depth = n then begin
        if List.mem 0 adj.(u) then found := List.rev path :: !found
      end
      else
        List.iter
          (fun v ->
            if not visited.(v) then begin
              visited.(v) <- true;
              extend (v :: path) v (depth + 1);
              visited.(v) <- false
            end)
          adj.(u)
    in
    visited.(0) <- true;
    extend [ 0 ] 0 1;
    List.rev !found
  end

let count g = List.length (circuits g)

let has_circuit g = circuits g <> []

let has_unique_circuit g = count g = 1
