(** Reachability, shortest paths and transitive closure.

    Reference implementations used as ground truth when checking what the
    Datalog programs of the paper compute (transitive closure of pi_3, the
    distance query of Proposition 2). *)

val bfs_distances : Digraph.t -> int -> int array
(** [bfs_distances g s] gives the length of a shortest directed path from
    [s] to each vertex, or [-1] when unreachable.  [bfs_distances g s].(s)
    is [0]. *)

val distance : Digraph.t -> int -> int -> int option
(** Shortest-path length, [None] if unreachable. *)

val distance_matrix : Digraph.t -> int array array
(** All-pairs shortest paths by repeated BFS; [-1] means unreachable. *)

val transitive_closure : Digraph.t -> Digraph.t
(** [transitive_closure g] has an edge u -> v iff there is a {e non-empty}
    directed path from u to v in [g] (matching the Datalog transitive
    closure program, which derives from at least one edge). *)

val reachable : Digraph.t -> int -> int -> bool
(** [reachable g u v]: is there a non-empty path from [u] to [v]? *)

val positive_distance : Digraph.t -> int -> int -> int option
(** Length of a shortest {e non-empty} path ([>= 1]), [None] if no such
    path.  This is the stage at which the pair enters the inflationary
    iteration of the transitive-closure program. *)

val distance_query : Digraph.t -> int -> int -> int -> int -> bool
(** [distance_query g x y x' y'] is the paper's distance query
    D(x, y, x', y'): true iff there is a path from [x] to [y] of length <=
    the length of every path from [x'] to [y']; in particular true whenever
    [y] is reachable from [x] but [y'] is not reachable from [x'], and false
    whenever [y] is unreachable from [x].  Paths here are non-empty, in line
    with {!transitive_closure}. *)

val topological_order : Digraph.t -> int list option
(** A topological order of the vertices, or [None] if the graph has a
    directed cycle. *)

val is_acyclic : Digraph.t -> bool
