(** Strongly connected components (Tarjan's algorithm).

    Used by the stratification analysis of Datalog programs: the strata are
    the strongly connected components of the predicate dependency graph,
    processed in topological order. *)

type result = {
  count : int;  (** Number of components. *)
  component : int array;
      (** [component.(v)] is the component index of vertex [v].  Component
          indices are a {e reverse topological} numbering: every edge u -> v
          between distinct components satisfies
          [component.(u) > component.(v)]. *)
}

val compute : Digraph.t -> result

val components : Digraph.t -> int list list
(** The components as vertex lists, in topological order (sources first). *)

val condensation : Digraph.t -> Digraph.t * int array
(** The condensation graph (one vertex per component, edges between distinct
    components, topologically numbered as in {!components}) together with
    the vertex -> condensation-vertex map. *)
