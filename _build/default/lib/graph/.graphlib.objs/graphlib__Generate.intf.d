lib/graph/generate.mli: Digraph
