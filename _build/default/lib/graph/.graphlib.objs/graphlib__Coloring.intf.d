lib/graph/coloring.mli: Digraph
