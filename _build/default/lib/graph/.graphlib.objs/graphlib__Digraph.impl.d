lib/graph/digraph.ml: Format Fun List Printf Relalg Set
