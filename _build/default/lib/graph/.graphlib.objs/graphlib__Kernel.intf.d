lib/graph/kernel.mli: Digraph
