lib/graph/digraph.mli: Format Relalg
