lib/graph/hamilton.ml: Array Digraph Int List
