lib/graph/coloring.ml: Array Digraph Fun Int List
