lib/graph/kernel.ml: Array Digraph List
