lib/graph/hamilton.mli: Digraph
