lib/graph/generate.ml: Digraph List Negdl_util Set
