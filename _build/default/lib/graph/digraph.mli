(** Finite directed graphs on vertices [0 .. n-1].

    This is the substrate for the paper's running examples: the directed
    paths L{_n} and cycles C{_n} of Section 2, the 3-colorability databases
    of Theorem 4, and the graphs of the distance query of Proposition 2. *)

type t

val make : int -> (int * int) list -> t
(** [make n edges] builds a graph with [n] vertices.  Duplicate edges are
    collapsed; self-loops are allowed.
    @raise Invalid_argument if an endpoint is outside [0 .. n-1]. *)

val vertex_count : t -> int

val edge_count : t -> int

val edges : t -> (int * int) list
(** Sorted lexicographically. *)

val has_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Out-neighbours, sorted. *)

val pred : t -> int -> int list
(** In-neighbours, sorted. *)

val vertices : t -> int list

val add_edge : t -> int -> int -> t

val reverse : t -> t

val union : t -> t -> t
(** Same vertex count required. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted past those of the first. *)

val undirected_view : t -> t
(** Adds the reverse of every edge (used by colorability, which concerns the
    underlying undirected graph). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_database : ?universe_prefix:string -> ?pred:string -> t -> Relalg.Database.t
(** [to_database g] encodes [g] as a database whose universe is
    [{prefix0, ..., prefix(n-1)}] (default prefix ["v"]) with a binary
    relation (default name ["e"]) holding the edges. *)

val vertex_symbol : ?universe_prefix:string -> int -> Relalg.Symbol.t
(** The symbol used by {!to_database} for a given vertex. *)
