let neighbours g =
  let n = Digraph.vertex_count g in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      if u <> v then adj.(v) <- u :: adj.(v))
    (Digraph.edges g);
  Array.map (List.sort_uniq Int.compare) adj

let has_self_loop g =
  List.exists (fun (u, v) -> u = v) (Digraph.edges g)

let check_coloring ~k g colors =
  let n = Digraph.vertex_count g in
  Array.length colors = n
  && Array.for_all (fun c -> c >= 0 && c < k) colors
  && List.for_all (fun (u, v) -> u = v || colors.(u) <> colors.(v))
       (Digraph.edges g)
  && not (has_self_loop g)

let find_coloring ~k g =
  if has_self_loop g then None
  else begin
    let n = Digraph.vertex_count g in
    let adj = neighbours g in
    let colors = Array.make n (-1) in
    (* Order vertices by decreasing degree: most constrained first. *)
    let order =
      List.sort
        (fun u v -> compare (List.length adj.(v)) (List.length adj.(u)))
        (List.init n Fun.id)
      |> Array.of_list
    in
    let allowed v c =
      List.for_all (fun w -> colors.(w) <> c) adj.(v)
    in
    let rec assign i =
      if i = n then true
      else
        let v = order.(i) in
        let rec try_color c =
          if c = k then false
          else if allowed v c then begin
            colors.(v) <- c;
            if assign (i + 1) then true
            else begin
              colors.(v) <- -1;
              try_color (c + 1)
            end
          end
          else try_color (c + 1)
        in
        try_color 0
    in
    if assign 0 then Some colors else None
  end

let is_colorable ~k g = find_coloring ~k g <> None

let is_3colorable g = is_colorable ~k:3 g

let count_colorings ~k g =
  if has_self_loop g then 0
  else begin
    let n = Digraph.vertex_count g in
    let adj = neighbours g in
    let colors = Array.make n (-1) in
    let count = ref 0 in
    let rec assign v =
      if v = n then incr count
      else
        for c = 0 to k - 1 do
          if List.for_all (fun w -> colors.(w) <> c) adj.(v) then begin
            colors.(v) <- c;
            assign (v + 1);
            colors.(v) <- -1
          end
        done
    in
    assign 0;
    !count
  end

let chromatic_number g =
  let n = Digraph.vertex_count g in
  let rec try_k k =
    if k > n then invalid_arg "Coloring.chromatic_number: self-loop present"
    else if is_colorable ~k g then k
    else try_k (k + 1)
  in
  if n = 0 then 0 else try_k 1
