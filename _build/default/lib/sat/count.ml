module ISet = Set.Make (Int)

exception Budget_exceeded

exception Conflict

(* Assign literal [l] true: drop satisfied clauses, shrink the others.
   @raise Conflict when an empty clause appears. *)
let assign l clauses =
  List.filter_map
    (fun clause ->
      if List.mem l clause then None
      else
        match List.filter (fun l' -> l' <> -l) clause with
        | [] -> raise Conflict
        | smaller -> Some smaller)
    clauses

(* Exhaustive unit propagation; returns the simplified clauses and the set
   of variables that got forced. *)
let rec propagate clauses forced =
  match List.find_opt (fun c -> List.length c = 1) clauses with
  | None -> (clauses, forced)
  | Some [ l ] -> propagate (assign l clauses) (ISet.add (abs l) forced)
  | Some _ -> assert false

let clause_vars c = ISet.of_list (List.map abs c)

(* Partition clauses into connected components of the variable-sharing
   graph; returns (clauses, vars) per component. *)
let components clauses =
  let groups : (int list list * ISet.t) list ref = ref [] in
  List.iter
    (fun clause ->
      let cv = clause_vars clause in
      let touching, rest =
        List.partition
          (fun (_, vars) -> not (ISet.is_empty (ISet.inter cv vars)))
          !groups
      in
      let merged_clauses =
        clause :: List.concat_map fst touching
      in
      let merged_vars =
        List.fold_left (fun acc (_, vs) -> ISet.union acc vs) cv touching
      in
      groups := (merged_clauses, merged_vars) :: rest)
    clauses;
  !groups

let pow2 n =
  if n < 0 then invalid_arg "Count.pow2" else 1 lsl n

let count_clauses ~budget clauses vars =
  let nodes = ref 0 in
  let rec go clauses vars =
    incr nodes;
    if !nodes > budget then raise Budget_exceeded;
    match propagate clauses ISet.empty with
    | exception Conflict -> 0
    | clauses, forced ->
      let vars = ISet.diff vars forced in
      if clauses = [] then pow2 (ISet.cardinal vars)
      else begin
        let comps = components clauses in
        let constrained =
          List.fold_left
            (fun acc (_, vs) -> ISet.union acc vs)
            ISet.empty comps
        in
        let free = ISet.cardinal (ISet.diff vars constrained) in
        let product =
          List.fold_left
            (fun acc (cs, vs) ->
              if acc = 0 then 0
              else begin
                (* Branch on some variable of the component. *)
                let v = ISet.min_elt vs in
                let vs' = ISet.remove v vs in
                let pos =
                  match assign v cs with
                  | exception Conflict -> 0
                  | cs' -> go cs' vs'
                in
                let neg =
                  match assign (-v) cs with
                  | exception Conflict -> 0
                  | cs' -> go cs' vs'
                in
                acc * (pos + neg)
              end)
            1 comps
        in
        product * pow2 free
      end
  in
  go clauses vars

let count_limited ~budget cnf =
  let clauses = Cnf.clauses cnf in
  let vars = ISet.of_list (List.init (Cnf.num_vars cnf) (fun i -> i + 1)) in
  match count_clauses ~budget clauses vars with
  | n -> Some n
  | exception Budget_exceeded -> None

let count cnf =
  match count_limited ~budget:max_int cnf with
  | Some n -> n
  | None -> assert false
