(** Exhaustive SAT baseline.

    Tries all 2{^n} assignments.  Used as ground truth in the test suite to
    validate the CDCL solver and the model enumerator, and as the "obvious
    algorithm" pole in the benchmark comparisons. *)

val all_models : Cnf.t -> bool array list
(** Every satisfying assignment, indexed by variable ([.(0)] unused), in
    lexicographic order (variable 1 most significant, [false] < [true]). *)

val count_models : Cnf.t -> int

val is_satisfiable : Cnf.t -> bool

val has_unique_model : Cnf.t -> bool
