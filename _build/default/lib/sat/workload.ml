module Prng = Negdl_util.Prng

let distinct_vars rng vars k =
  let rec pick acc =
    if List.length acc = k then acc
    else
      let v = 1 + Prng.int rng vars in
      if List.mem v acc then pick acc else pick (v :: acc)
  in
  pick []

let random_kcnf ~seed ~vars ~clauses ~k =
  if k > vars then invalid_arg "Workload.random_kcnf: k > vars";
  let rng = Prng.create seed in
  let clause () =
    distinct_vars rng vars k
    |> List.map (fun v -> if Prng.bool rng then v else -v)
  in
  let rec build cnf remaining =
    if remaining = 0 then cnf
    else build (Cnf.add_clause cnf (clause ())) (remaining - 1)
  in
  build (Cnf.create vars) clauses

let random_3cnf ~seed ~vars ~clauses = random_kcnf ~seed ~vars ~clauses ~k:3

let forced_sat ~seed ~vars ~clauses ~k =
  if k > vars then invalid_arg "Workload.forced_sat: k > vars";
  let rng = Prng.create seed in
  let hidden = Array.init (vars + 1) (fun _ -> Prng.bool rng) in
  let clause () =
    let vs = distinct_vars rng vars k in
    let lits = List.map (fun v -> if Prng.bool rng then v else -v) vs in
    let satisfied =
      List.exists (fun l -> if l > 0 then hidden.(l) else not hidden.(-l)) lits
    in
    if satisfied then lits
    else
      (* Flip one literal so the hidden assignment satisfies the clause. *)
      match lits with
      | [] -> []
      | l :: rest -> -l :: rest
  in
  let rec build cnf remaining =
    if remaining = 0 then cnf
    else build (Cnf.add_clause cnf (clause ())) (remaining - 1)
  in
  build (Cnf.create vars) clauses

let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let cnf = Cnf.create ((n + 1) * n) in
  (* Every pigeon sits in some hole. *)
  let cnf =
    List.fold_left
      (fun cnf p -> Cnf.add_clause cnf (List.init n (fun h -> var p h)))
      cnf
      (List.init (n + 1) Fun.id)
  in
  (* No two pigeons share a hole. *)
  let cnf = ref cnf in
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        cnf := Cnf.add_clause !cnf [ -var p1 h; -var p2 h ]
      done
    done
  done;
  !cnf

let exactly_k_models n k =
  if n < 0 || n > 20 then invalid_arg "Workload.exactly_k_models: need 0 <= n <= 20";
  let total = 1 lsl n in
  if k < 0 || k > total then
    invalid_arg "Workload.exactly_k_models: k out of range";
  let cnf = ref (Cnf.create n) in
  (* Exclude the lexicographically largest total - k assignments.  In
     assignment [m], variable v is true iff bit (n - v) of m is set, so
     larger m = lexicographically larger assignment on (v1, v2, ...). *)
  for m = total - 1 downto k do
    let clause =
      List.init n (fun i ->
          let v = i + 1 in
          let bit = (m lsr (n - v)) land 1 in
          if bit = 1 then -v else v)
    in
    cnf := Cnf.add_clause !cnf clause
  done;
  !cnf
