(** Random CNF workloads (deterministic, seeded).

    Generators for the experiment harness: random k-CNF near and away from
    the satisfiability threshold, forced-satisfiable instances, pigeonhole
    formulas (canonical hard UNSAT family), and instances engineered to have
    a prescribed number of models. *)

val random_kcnf :
  seed:int -> vars:int -> clauses:int -> k:int -> Cnf.t
(** Uniform random [k]-CNF: each clause picks [k] distinct variables and
    random polarities. *)

val random_3cnf : seed:int -> vars:int -> clauses:int -> Cnf.t

val forced_sat : seed:int -> vars:int -> clauses:int -> k:int -> Cnf.t
(** Random [k]-CNF guaranteed satisfiable: a hidden assignment is drawn
    first and every clause is patched to satisfy it. *)

val pigeonhole : int -> Cnf.t
(** [pigeonhole n]: n+1 pigeons into n holes; unsatisfiable, classically
    hard for resolution.  Variable (p, h) is [p * n + h + 1]. *)

val exactly_k_models : int -> int -> Cnf.t
(** [exactly_k_models n k] (with 0 <= k <= 2{^n}) is a CNF over [n]
    variables with exactly [k] models: it excludes the lexicographically
    largest [2^n - k] assignments. *)
