let blocking_clause projection model =
  List.map (fun v -> if model.(v) then -v else v) projection

let models ?projection ?limit cnf =
  let projection =
    match projection with
    | Some vs -> vs
    | None -> List.init (Cnf.num_vars cnf) (fun i -> i + 1)
  in
  let session = Solver.session cnf in
  let rec loop acc found =
    let capped =
      match limit with
      | Some l -> found >= l
      | None -> false
    in
    if capped then acc
    else
      match Solver.solve_assuming session [] with
      | Solver.Unsat -> acc
      | Solver.Sat model ->
        let block = blocking_clause projection model in
        if block = [] then model :: acc
        else begin
          Solver.add_clause session block;
          loop (model :: acc) (found + 1)
        end
  in
  List.rev (loop [] 0)

let count ?projection ?limit cnf =
  List.length (models ?projection ?limit cnf)

let is_unique ?projection cnf =
  count ?projection ~limit:2 cnf = 1

let forced_true cnf vars =
  let session = Solver.session cnf in
  match Solver.solve_assuming session [] with
  | Solver.Unsat -> []
  | Solver.Sat first ->
    (* v is forced iff cnf /\ -v is unsatisfiable; skip the assumption call
       when the current model already witnesses v = false. *)
    List.filter
      (fun v ->
        first.(v)
        &&
        match Solver.solve_assuming session [ -v ] with
        | Solver.Unsat -> true
        | Solver.Sat _ -> false)
      vars
