(** Exact model counting (#SAT).

    A DPLL-style counter with unit propagation, connected-component
    decomposition (disjoint variable sets multiply) and free-variable
    accounting.  Exponential in the worst case, but the component split
    makes structured instances cheap — the paper's G{_n} census is the
    poster child: the fixpoint encoding of pi_1 on k disjoint cycles falls
    apart into k independent components, so counting its 2{^ k} fixpoints
    costs O(k) component counts instead of 2{^ k} enumeration calls.

    Every total model of the fixpoint encoding is determined by its atom
    variables (the instance auxiliaries are biconditionally defined), so
    the unprojected count below {e is} the fixpoint count — the fact
    [Fixpointlib.Solve.count_exact] relies on. *)

val count : Cnf.t -> int
(** The number of satisfying assignments over all [num_vars] variables.
    Variables not constrained by any clause contribute a factor of 2. *)

val count_limited : budget:int -> Cnf.t -> int option
(** Like {!count}, but gives up ([None]) after [budget] DPLL branching
    nodes. *)
