(** Model enumeration, counting and uniqueness via the CDCL solver.

    Enumeration proceeds by repeatedly solving and adding a blocking clause
    over a projection set of variables.  This powers the fixpoint census of
    the paper's Section 2 example (counting the 2{^n} fixpoints on n disjoint
    cycles) and the unique-fixpoint test of Theorem 2. *)

val models :
  ?projection:int list -> ?limit:int -> Cnf.t -> bool array list
(** [models ?projection ?limit cnf] lists satisfying assignments.  When
    [projection] is given, assignments are enumerated (and blocked) only up
    to their values on those variables, so each projected valuation appears
    once.  [limit] caps the number of models returned (default: no cap). *)

val count : ?projection:int list -> ?limit:int -> Cnf.t -> int
(** Number of (projected) models, capped at [limit] when given. *)

val is_unique : ?projection:int list -> Cnf.t -> bool
(** Exactly one (projected) model?  Costs at most two solver calls. *)

val forced_true : Cnf.t -> int list -> int list
(** [forced_true cnf vars] returns the subset of [vars] that are true in
    {e every} model of [cnf] (empty if the CNF is unsatisfiable).  One
    solver call per candidate variable: v is forced iff [cnf /\ -v] is
    unsatisfiable.  This is the NP-oracle loop used to compute the
    intersection of all fixpoints (Theorem 3). *)
