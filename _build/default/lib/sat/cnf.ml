type t = {
  num_vars : int;
  rev_clauses : int list list;  (* reversed insertion order *)
  count : int;
}

let create n =
  if n < 0 then invalid_arg "Cnf.create: negative variable count";
  { num_vars = n; rev_clauses = []; count = 0 }

let num_vars cnf = cnf.num_vars

let num_clauses cnf = cnf.count

let check_literal cnf l =
  let v = abs l in
  if l = 0 || v > cnf.num_vars then
    invalid_arg (Printf.sprintf "Cnf: literal %d out of range 1..%d" l cnf.num_vars)

let normalise_clause lits =
  let sorted = List.sort_uniq Int.compare lits in
  let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
  if tautology then None else Some sorted

let add_clause cnf lits =
  List.iter (check_literal cnf) lits;
  match normalise_clause lits with
  | None -> cnf
  | Some c ->
    { cnf with rev_clauses = c :: cnf.rev_clauses; count = cnf.count + 1 }

let of_list n clauses = List.fold_left add_clause (create n) clauses

let clauses cnf = List.rev cnf.rev_clauses

let eval_clause assign c =
  List.exists (fun l -> if l > 0 then assign l else not (assign (-l))) c

let eval cnf assign = List.for_all (eval_clause assign) (clauses cnf)

let map_vars f cnf n' =
  let renamed =
    List.map
      (List.map (fun l -> if l > 0 then f l else - (f (-l))))
      (clauses cnf)
  in
  of_list n' renamed

let pp ppf cnf =
  let pp_clause ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         (fun ppf l ->
           if l > 0 then Format.fprintf ppf "x%d" l
           else Format.fprintf ppf "~x%d" (-l)))
      c
  in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ & ")
       pp_clause)
    (clauses cnf)
