let pp ppf cnf =
  Format.fprintf ppf "p cnf %d %d@." (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) c;
      Format.fprintf ppf "0@.")
    (Cnf.clauses cnf)

let to_string cnf = Format.asprintf "%a" pp cnf

let parse text =
  let tokens =
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           let t = String.trim line in
           t <> "" && t.[0] <> 'c')
    |> List.concat_map (fun line ->
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> String.trim t <> ""))
  in
  match tokens with
  | "p" :: "cnf" :: nv :: _nc :: rest -> (
    match int_of_string_opt nv with
    | None -> Error (Printf.sprintf "bad variable count %S" nv)
    | Some n -> (
      let rec clauses acc current = function
        | [] ->
          if current = [] then Ok (List.rev acc)
          else Error "unterminated clause (missing 0)"
        | tok :: rest -> (
          match int_of_string_opt tok with
          | None -> Error (Printf.sprintf "bad literal %S" tok)
          | Some 0 -> clauses (List.rev current :: acc) [] rest
          | Some l -> clauses acc (l :: current) rest)
      in
      match clauses [] [] rest with
      | Error _ as e -> e
      | Ok cs -> (
        try Ok (Cnf.of_list n cs) with Invalid_argument msg -> Error msg)))
  | _ -> Error "missing 'p cnf' header"

let parse_exn text =
  match parse text with
  | Ok cnf -> cnf
  | Error msg -> failwith ("Dimacs.parse: " ^ msg)
