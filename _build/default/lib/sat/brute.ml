let fold_models f init cnf =
  let n = Cnf.num_vars cnf in
  let clauses = Cnf.clauses cnf in
  let assign = Array.make (n + 1) false in
  let acc = ref init in
  let rec go v =
    if v > n then begin
      if List.for_all (Cnf.eval_clause (fun u -> assign.(u))) clauses then
        acc := f !acc (Array.copy assign)
    end
    else begin
      assign.(v) <- false;
      go (v + 1);
      assign.(v) <- true;
      go (v + 1)
    end
  in
  go 1;
  !acc

let all_models cnf = List.rev (fold_models (fun acc m -> m :: acc) [] cnf)

let count_models cnf = fold_models (fun acc _ -> acc + 1) 0 cnf

let is_satisfiable cnf = count_models cnf > 0

let has_unique_model cnf = count_models cnf = 1
