(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS-style activities, phase saving and
    Luby restarts.  This is the engine behind [Fixpointlib]: deciding
    whether a DATALOG-not program has a fixpoint on a database is
    NP-complete (Theorem 1), so a SAT solver is the natural — and the
    honest — implementation vehicle. *)

type result =
  | Sat of bool array
      (** A satisfying assignment, indexed by variable ([.(0)] unused). *)
  | Unsat

val solve : Cnf.t -> result

val solve_with_units : Cnf.t -> int list -> result
(** [solve_with_units cnf units] solves [cnf] with the extra unit clauses
    [units] (a cheap form of assumptions). *)

val is_satisfiable : Cnf.t -> bool

val model_checks : result -> Cnf.t -> bool
(** [model_checks r cnf] is true when [r] is [Unsat] or when the model
    satisfies every clause of [cnf]; used by the tests as a self-check. *)

(** {1 Incremental sessions}

    A session loads the CNF once and answers many queries under varying
    {e assumptions} (literals forced for one call only, realised as the
    first decisions, as in MiniSat).  Clauses learned during one call are
    implied by the formula alone, so they persist and accelerate later
    calls — this is what makes the fixpoint searcher's
    one-SAT-call-per-atom algorithms (Theorem 3's intersection, model
    enumeration) affordable. *)

type session

val session : Cnf.t -> session

val solve_assuming : session -> int list -> result
(** Solve under the given assumption literals (DIMACS convention).  [Unsat]
    means unsatisfiable {e under these assumptions}. *)

val add_clause : session -> int list -> unit
(** Permanently adds a clause (e.g. a blocking clause during model
    enumeration).
    @raise Invalid_argument on a literal out of range. *)
