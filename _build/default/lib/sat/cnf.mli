(** Propositional formulas in conjunctive normal form.

    Variables are positive integers [1 .. num_vars]; a literal is a non-zero
    integer whose sign is its polarity (DIMACS convention).  SAT is the
    paper's canonical NP problem: Example 1 reduces it to fixpoint existence
    of the fixed program pi_SAT, and the fixpoint searcher of
    [Fixpointlib] runs in the other direction, encoding Theta(S) = S as a
    CNF. *)

type t

val create : int -> t
(** [create n] is the empty CNF over variables [1 .. n]. *)

val num_vars : t -> int

val num_clauses : t -> int

val add_clause : t -> int list -> t
(** Adds a clause (a disjunction of literals).  Duplicate literals are
    collapsed; a clause containing both [l] and [-l] is a tautology and is
    dropped.  The empty clause is representable and makes the CNF trivially
    unsatisfiable.
    @raise Invalid_argument on a literal out of range. *)

val of_list : int -> int list list -> t

val clauses : t -> int list list
(** The clauses, in insertion order (tautologies omitted). *)

val eval : t -> (int -> bool) -> bool
(** [eval cnf assign] evaluates under the total assignment [assign]
    (indexed by variable). *)

val eval_clause : (int -> bool) -> int list -> bool

val map_vars : (int -> int) -> t -> int -> t
(** [map_vars f cnf n'] renames every variable [v] to [f v] and declares
    [n'] variables in the result. *)

val pp : Format.formatter -> t -> unit
