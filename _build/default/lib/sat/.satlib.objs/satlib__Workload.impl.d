lib/sat/workload.ml: Array Cnf Fun List Negdl_util
