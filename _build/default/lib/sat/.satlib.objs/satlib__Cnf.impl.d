lib/sat/cnf.ml: Format Int List Printf
