lib/sat/count.mli: Cnf
