lib/sat/dimacs.ml: Cnf Format List Printf String
