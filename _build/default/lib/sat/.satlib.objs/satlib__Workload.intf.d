lib/sat/workload.mli: Cnf
