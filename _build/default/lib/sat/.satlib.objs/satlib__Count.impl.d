lib/sat/count.ml: Cnf Int List Set
