lib/sat/enumerate.mli: Cnf
