lib/sat/enumerate.ml: Array Cnf List Solver
