(* Theorem 4, live: SUCCINCT 3-COLORING as fixpoint existence on the
   two-element domain {0, 1}.

   A graph on {0,1}^n is presented by a Boolean circuit with 2n inputs;
   the circuit's gates become IDB relations and a vectorised pi_COL rides
   on top.  The resulting program has a fixpoint iff the presented graph is
   3-colorable.  Note the role reversal compared to Example 1: here the
   *program* carries the instance and the database is trivial — the
   expression-complexity side of the NEXP-completeness result.

   Run with:  dune exec examples/succinct_coloring.exe *)

let test name sg =
  let explicit = Negdl.Succinct.expand sg in
  let compiled = Negdl.Succinct3col.compile sg in
  let solver = Negdl.Succinct3col.solver compiled in
  let ground = Negdl.Fixpoints.ground solver in
  let by_fixpoint = Negdl.Fixpoints.exists solver in
  let by_backtracking = Negdl.Graph_coloring.is_3colorable explicit in
  Format.printf
    "  %-28s circuit gates=%-3d program rules=%-3d ground atoms=%-5d \
     3colorable: fixpoint=%-5b backtracking=%-5b %s@."
    name
    (Negdl.Circuit.num_gates (Negdl.Succinct.circuit sg))
    (List.length compiled.Negdl.Succinct3col.program.Negdl.Ast.rules)
    (Negdl.Ground.atom_count ground)
    by_fixpoint by_backtracking
    (if by_fixpoint = by_backtracking then "ok" else "MISMATCH")

let () =
  Format.printf
    "SUCCINCT 3-COLORING via fixpoints (universe {0, 1} only!):@.@.";
  test "hypercube n=2 (C_4)" (Negdl.Succinct.hypercube 2);
  test "hypercube n=3 (Q_3)" (Negdl.Succinct.hypercube 3);
  test "complete graph on 4 nodes" (Negdl.Succinct.complete 2);
  test "empty graph on 4 nodes" (Negdl.Succinct.empty 2);
  test "K_3 (explicit, padded)" (Negdl.Succinct.of_explicit (Negdl.Generate.complete 3));
  test "K_4 (explicit, padded)" (Negdl.Succinct.of_explicit (Negdl.Generate.complete 4));
  test "C_5 (explicit, padded)" (Negdl.Succinct.of_explicit (Negdl.Generate.cycle 5));

  (* Show a slice of the generated program. *)
  let compiled = Negdl.Succinct3col.compile (Negdl.Succinct.hypercube 2) in
  let rules = compiled.Negdl.Succinct3col.program.Negdl.Ast.rules in
  Format.printf "@.First rules of the hypercube program (%d rules total):@."
    (List.length rules);
  List.iteri
    (fun i r ->
      if i < 6 then Format.printf "  %s@." (Negdl.Pretty.rule_to_string r))
    rules
