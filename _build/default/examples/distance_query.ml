(* Proposition 2, live: one program, two meanings.

   The 6-rule distance program computes
     - under inflationary semantics: the distance query D(x, y, x', y')
       ("some path x -> y no longer than every path x' -> y'");
     - under stratified semantics: TC(x, y) /\ not TC(x', y').

   We evaluate both on a path graph, print a few telling quadruples, and
   cross-check against BFS ground truth.

   Run with:  dune exec examples/distance_query.exe *)

let () =
  Format.printf "The program (carrier %s):@.%a@.@." Negdl.Distance.carrier
    Negdl.Pretty.pp_program Negdl.Distance.program;

  let g = Negdl.Generate.path 5 in
  Format.printf "Graph: the path v0 -> v1 -> v2 -> v3 -> v4@.@.";

  let infl = Negdl.Distance.inflationary g in
  let strat = Negdl.Distance.stratified g in
  Format.printf "inflationary carrier: %d quadruples@."
    (Negdl.Relation.cardinal infl);
  Format.printf "stratified carrier:   %d quadruples@.@."
    (Negdl.Relation.cardinal strat);

  let show x y x' y' =
    let q = Negdl.Distance.quad x y x' y' in
    Format.printf
      "  D(v%d, v%d, v%d, v%d):  inflationary=%-5b stratified=%-5b \
       bfs-reference=%b@."
      x y x' y'
      (Negdl.Relation.mem q infl)
      (Negdl.Relation.mem q strat)
      (Negdl.Traverse.distance_query g x y x' y')
  in
  Format.printf "Quadruples where the two semantics disagree or agree:@.";
  (* dist(0,1)=1 <= dist(0,4)=4: in the distance query; but both pairs are
     in the transitive closure, so the stratified reading rejects it. *)
  show 0 1 0 4;
  (* dist(0,4)=4 > dist(0,1)=1: in neither. *)
  show 0 4 0 1;
  (* (0,1) reachable, (4,0) not: in both readings. *)
  show 0 1 4 0;
  (* equal distances count as "no longer than". *)
  show 1 2 2 3;

  (* Full agreement with the BFS ground truth. *)
  let reference = Negdl.Distance.reference g in
  let reference_strat = Negdl.Distance.reference_stratified g in
  Format.printf
    "@.inflationary = BFS distance query:  %b@.stratified = TC-and-not-TC: \
     \ %b@."
    (Negdl.Relation.equal infl reference)
    (Negdl.Relation.equal strat reference_strat);

  (* The stage at which a quadruple enters the inflationary iteration is
     the distance itself (the heart of the paper's proof). *)
  let db = Negdl.Digraph.to_database g in
  let trace = Negdl.Inflationary.eval_trace Negdl.Distance.program db in
  Format.printf "@.Stages (expected: stage = dist(x, y) when admitted):@.";
  List.iter
    (fun (x, y, x', y') ->
      match
        Negdl.Saturate.stage_of trace Negdl.Distance.carrier
          (Negdl.Distance.quad x y x' y')
      with
      | Some stage ->
        Format.printf "  (v%d, v%d, v%d, v%d) entered at stage %d@." x y x' y'
          stage
      | None -> Format.printf "  (v%d, v%d, v%d, v%d) never entered@." x y x' y')
    [ (0, 1, 0, 4); (0, 2, 0, 4); (0, 3, 0, 4); (0, 4, 0, 4); (0, 4, 0, 1) ]
