(* Section 2 of the paper, live: the fixpoint census of the one-rule
   program pi_1 = T(x) <- E(y, x), !T(y) on paths, cycles, and disjoint
   unions of cycles.

   The paper's claims, reproduced row by row:
     - on the path L_n there is a unique fixpoint: the even positions;
     - on the cycle C_n there is no fixpoint when n is odd and exactly two
       (the odd and the even positions) when n is even;
     - on k disjoint even cycles there are 2^k pairwise incomparable
       fixpoints — exponentially many, and no least one.

   Run with:  dune exec examples/cycles.exe *)

let pi1 = Negdl.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let census g =
  Negdl.analyze_fixpoints ~count_limit:1024 pi1 (Negdl.Digraph.to_database g)

let row name report =
  Format.printf "  %-22s fixpoints=%-5s unique=%-5b least=%b@." name
    (match report.Negdl.fixpoint_count with
    | Some n -> string_of_int n
    | None -> "?")
    report.Negdl.unique
    (report.Negdl.least <> None)

let () =
  Format.printf "pi_1 = %s@.@."
    (Negdl.Pretty.program_to_string pi1);

  Format.printf "Paths L_n (expected: unique fixpoint = even positions):@.";
  for n = 2 to 7 do
    let report = census (Negdl.Generate.path n) in
    row (Printf.sprintf "L_%d" n) report;
    (* Show the fixpoint itself for one path. *)
    if n = 5 then
      match report.Negdl.example with
      | Some fp ->
        Format.printf "      L_5 fixpoint: t = %a@." Negdl.Relation.pp
          (Negdl.Idb.get fp "t")
      | None -> ()
  done;

  Format.printf "@.Cycles C_n (expected: 0 for odd n, 2 for even n):@.";
  for n = 3 to 9 do
    row (Printf.sprintf "C_%d" n) (census (Negdl.Generate.cycle n))
  done;

  Format.printf
    "@.Disjoint unions k x C_4 (expected: 2^k incomparable fixpoints, no \
     least):@.";
  for k = 1 to 4 do
    let g = Negdl.Generate.disjoint_copies k (Negdl.Generate.cycle 4) in
    row (Printf.sprintf "%d x C_4" k) (census g)
  done;

  (* The combinatorial face of the same census: T is a fixpoint of pi_1
     exactly when its complement is a kernel of the reversed graph. *)
  Format.printf "@.Kernels of the reversed graph (same census, no Datalog):@.";
  List.iter
    (fun (name, g) ->
      Format.printf "  %-10s fixpoints=%d  reversed-kernels=%d@." name
        (Option.value ~default:(-1)
           (Negdl.analyze_fixpoints ~count_limit:1024 pi1
              (Negdl.Digraph.to_database g))
             .Negdl.fixpoint_count)
        (Negdl.Kernel.count (Negdl.Digraph.reverse g)))
    [
      ("L_5", Negdl.Generate.path 5);
      ("C_5", Negdl.Generate.cycle 5);
      ("C_6", Negdl.Generate.cycle 6);
      ("2 x C_4", Negdl.Generate.disjoint_copies 2 (Negdl.Generate.cycle 4));
    ];

  (* What happens if one just iterates Theta from empty, hoping for a
     fixpoint?  The title question, answered empirically. *)
  Format.printf
    "@.Naive iteration of Theta from the empty valuation (the title \
     question):@.";
  List.iter
    (fun (name, g) ->
      let db = Negdl.Digraph.to_database g in
      match Negdl.Theta.iterate pi1 db (Negdl.Idb.of_program pi1) with
      | Negdl.Theta.Reached_fixpoint { steps; _ } ->
        Format.printf "  %-10s converges in %d steps@." name steps
      | Negdl.Theta.Entered_cycle { period; _ } ->
        Format.printf "  %-10s oscillates with period %d — never settles@."
          name period
      | Negdl.Theta.Gave_up _ -> Format.printf "  %-10s gave up@." name)
    [
      ("L_6", Negdl.Generate.path 6);
      ("C_5", Negdl.Generate.cycle 5);
      ("C_6", Negdl.Generate.cycle 6);
    ];

  Format.printf
    "@.Inflationary semantics, by contrast, is total: on C_5 (no fixpoint \
     at all) it answers t = %a@."
    Negdl.Relation.pp
    (Negdl.Inflationary.carrier pi1 ~carrier:"t"
       (Negdl.Digraph.to_database (Negdl.Generate.cycle 5)))
