(* The win-move game under the semantics zoo — a guided tour of why the
   paper proposes inflationary semantics.

   win(X) <- e(X, Y), !win(Y): position X is winning if some move reaches a
   losing position.  The rule recurses through negation, so the stratified
   semantics refuses it outright.  Fixpoint semantics may offer zero, one,
   or many fixpoints depending on the graph (Section 2's trichotomy).  The
   well-founded semantics answers with three values (draws are 'unknown').
   Inflationary semantics always answers — though its answer on cyclic
   games ("reachable in an odd number of steps from somewhere") is cruder.

   Run with:  dune exec examples/win_move.exe *)

let win = Negdl.Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)."

let describe g name =
  let db = Negdl.Digraph.to_database g in
  Format.printf "--- %s ---@." name;
  (* Stratified: always fails. *)
  (match Negdl.run Negdl.Semantics_stratified win db with
  | Error e -> Format.printf "  stratified:    refused (%s)@." e
  | Ok _ -> Format.printf "  stratified:    (unexpectedly accepted)@.");
  (* Fixpoint census. *)
  let report = Negdl.analyze_fixpoints win db in
  Format.printf "  fixpoints:     %s@."
    (match report.Negdl.fixpoint_count with
    | Some 0 -> "none"
    | Some 1 -> "unique"
    | Some n -> Printf.sprintf "%d (non-deterministic!)" n
    | None -> "?");
  (* Kripke-Kleene: three-valued, more cautious than well-founded. *)
  let kk = Negdl.Fitting.eval win db in
  let kk_unknown = Negdl.Idb.total_cardinal (Negdl.Fitting.unknown kk) in
  Format.printf "  kripke-kleene: %d true, %d unknown@."
    (Negdl.Idb.total_cardinal kk.Negdl.Fitting.true_facts)
    kk_unknown;
  (* Well-founded: the game-theoretic answer. *)
  let model = Negdl.Wellfounded.eval win db in
  let tuples rel =
    Negdl.Relation.fold
      (fun t acc -> Negdl.Tuple.to_string t :: acc)
      rel []
    |> List.rev |> String.concat " "
  in
  Format.printf "  well-founded:  win=%s"
    (tuples (Negdl.Idb.get model.Negdl.Wellfounded.true_facts "win"));
  let unknown = Negdl.Wellfounded.unknown model in
  if Negdl.Idb.is_empty unknown then Format.printf " (no draws)@."
  else Format.printf " draws=%s@." (tuples (Negdl.Idb.get unknown "win"));
  (* Inflationary: total, but coarse. *)
  let infl = Negdl.Inflationary.carrier win ~carrier:"win" db in
  Format.printf "  inflationary:  win=%s@.@." (tuples infl)

let () =
  (* An acyclic game: fully determined; all semantics that answer agree. *)
  describe (Negdl.Generate.path 4) "path game v0 -> v1 -> v2 -> v3";

  (* A 2-cycle: a draw.  No stratification; two incomparable fixpoints
     ({v0} and {v1} -- either player can be declared the winner
     consistently!); the well-founded model leaves both unknown. *)
  describe (Negdl.Digraph.make 2 [ (0, 1); (1, 0) ]) "two-position loop";

  (* A 3-cycle: *no* fixpoint at all (the paper's odd cycle), but the
     well-founded and inflationary semantics still answer. *)
  describe (Negdl.Generate.cycle 3) "three-position loop";

  (* Cycle with an exit: v2 can escape to a sink v3. *)
  describe
    (Negdl.Digraph.make 4 [ (0, 1); (1, 0); (1, 2); (2, 3) ])
    "loop with an exit"
