examples/succinct_coloring.ml: Format List Negdl
