examples/distance_query.mli:
