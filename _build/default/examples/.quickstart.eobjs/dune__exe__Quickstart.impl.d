examples/quickstart.ml: Format List Negdl String
