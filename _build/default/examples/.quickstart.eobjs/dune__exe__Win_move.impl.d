examples/win_move.ml: Format List Negdl Printf String
