examples/sat_reduction.ml: Array Format Negdl
