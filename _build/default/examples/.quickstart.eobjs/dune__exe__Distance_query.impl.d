examples/distance_query.ml: Format List Negdl
