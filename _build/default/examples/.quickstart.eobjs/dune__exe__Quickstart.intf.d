examples/quickstart.mli:
