examples/access_control.ml: Format List Negdl String
