examples/cycles.ml: Format List Negdl Option Printf
