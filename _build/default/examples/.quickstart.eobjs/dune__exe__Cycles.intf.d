examples/cycles.mli:
