examples/succinct_coloring.mli:
