(* Example 1 / Theorems 1 and 2, live: SAT as fixpoint existence.

   A CNF instance I becomes the database D(I); the fixed program pi_SAT has
   a fixpoint on D(I) iff I is satisfiable, and fixpoints correspond one to
   one to satisfying assignments.  We run the correspondence in both
   directions and also check the Theorem 2 angle: unique satisfying
   assignment iff unique fixpoint.

   Run with:  dune exec examples/sat_reduction.exe *)

let show_cnf name cnf =
  Format.printf "@.%s = %a@." name Negdl.Cnf.pp cnf

let () =
  Format.printf "pi_SAT:@.%a@.@." Negdl.Pretty.pp_program Negdl.Sat_db.program;

  (* (x1 \/ x2) /\ (~x1 \/ x3) /\ (~x2): models are exactly
     {x1, x3} and {x1, x3, ...}? Work it out: ~x2 forces x2 = false, so
     x1 must be true, so x3 must be true: a unique model {x1, x3}. *)
  let unique_cnf = Negdl.Cnf.of_list 3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2 ] ] in
  show_cnf "I1 (unique model)" unique_cnf;
  let solver = Negdl.Sat_db.solver unique_cnf in
  Format.printf "  fixpoint exists: %b@." (Negdl.Fixpoints.exists solver);
  Format.printf "  unique fixpoint: %b  (Theorem 2: iff unique model)@."
    (Negdl.Fixpoints.has_unique solver);
  (match Negdl.Fixpoints.find solver with
  | Some fp ->
    let a = Negdl.Sat_db.assignment_of_fixpoint unique_cnf fp in
    Format.printf "  assignment from fixpoint: x1=%b x2=%b x3=%b@." a.(1)
      a.(2) a.(3)
  | None -> assert false);

  (* An unsatisfiable instance: no fixpoint at all. *)
  let unsat = Negdl.Cnf.of_list 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] in
  show_cnf "I2 (unsatisfiable)" unsat;
  Format.printf "  fixpoint exists: %b@."
    (Negdl.Fixpoints.exists (Negdl.Sat_db.solver unsat));

  (* Counting: model count = fixpoint count. *)
  let free = Negdl.Cnf.of_list 3 [ [ 1; 2; 3 ] ] in
  show_cnf "I3 (one clause over three variables)" free;
  let models = Negdl.Sat_brute.count_models free in
  let fixpoints = Negdl.Fixpoints.count (Negdl.Sat_db.solver free) in
  Format.printf "  models = %d, fixpoints = %d@." models fixpoints;

  (* And in bulk, on random 3-CNF. *)
  Format.printf "@.Random 3-CNF, 5 vars, 12 clauses (10 seeds):@.";
  for seed = 1 to 10 do
    let cnf = Negdl.Sat_workload.random_3cnf ~seed ~vars:5 ~clauses:12 in
    let m = Negdl.Sat_brute.count_models cnf in
    let f = Negdl.Fixpoints.count (Negdl.Sat_db.solver cnf) in
    Format.printf "  seed %2d: models=%2d fixpoints=%2d %s@." seed m f
      (if m = f then "ok" else "MISMATCH")
  done
