(* The negdl command-line interface.

   Subcommands:
     eval      — evaluate a program on a database under a chosen semantics
     fixpoints — run the Section 3 fixpoint query suite (SAT-backed)
     explain   — print the physical plans a program compiles to
     serve     — long-lived incremental materialization (insert/delete/query)
     snapshot  — materialise a model and write a binary snapshot
     restore   — load and print a snapshot without re-evaluating
     stratify  — show the stratification (or why there is none)
     check     — static well-formedness report
     ground    — print the ground (propositional) program

   Programs use the concrete DATALOG-not syntax (t(X) :- e(Y, X), !t(Y).),
   databases the fact format (edge(a, b).  #universe c d.). *)

open Cmdliner

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

let load_program path =
  match read_file path with
  | Error msg -> Error msg
  | Ok text -> (
    match Negdl.parse_program text with
    | Ok p -> Ok p
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let load_database path =
  match read_file path with
  | Error msg -> Error msg
  | Ok text -> (
    match Negdl.parse_database text with
    | Ok db -> Ok db
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let or_die = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "negdl: %s@." msg;
    exit 1

let print_idb ?(header = "") idb =
  if header <> "" then Format.printf "%s@." header;
  List.iter
    (fun (name, r) ->
      Format.printf "%s/%d (%d tuples) = %a@." name
        (Negdl.Relation.arity r)
        (Negdl.Relation.cardinal r)
        Negdl.Relation.pp r)
    (Negdl.Idb.bindings idb)

(* --- common arguments ----------------------------------------------------- *)

let program_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM" ~doc:"Datalog program file.")

let database_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"DATABASE" ~doc:"Database (facts) file.")

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("seminaive", `Seminaive); ("naive", `Naive); ("parallel", `Parallel) ]
  in
  Arg.(
    value
    & opt engine_conv `Seminaive
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Iteration engine: $(b,seminaive) (default), $(b,naive), or \
           $(b,parallel) (semi-naive with rule applications fanned across \
           domains).")

let indexing_arg =
  let indexing_conv =
    Arg.enum [ ("cached", `Cached); ("percall", `Percall); ("scan", `Scan) ]
  in
  Arg.(
    value
    & opt indexing_conv `Cached
    & info [ "indexing" ] ~docv:"MODE"
        ~doc:
          "Join indexing: $(b,cached) (default, persistent per-relation \
           column indexes maintained incrementally), $(b,percall) (rebuilt \
           for every rule application), or $(b,scan) (no indexes).")

let storage_arg =
  let storage_conv = Arg.enum [ ("hashed", `Hashed); ("treeset", `Treeset) ] in
  Arg.(
    value
    & opt storage_conv `Hashed
    & info [ "storage" ] ~docv:"BACKEND"
        ~doc:
          "Relation storage backend: $(b,hashed) (default, packed tuple ids            in Patricia sets over the global tuple store) or $(b,treeset)            (balanced tuple sets, the pre-packing behaviour, kept as an            ablation).")

let planner_arg =
  let planner_conv =
    let parse s =
      match Negdl.Plan.planner_of_string s with
      | Ok v -> Ok v
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv ~docv:"PLANNER" (parse, Negdl.Plan.pp_planner)
  in
  Arg.(
    value
    & opt planner_conv `Static
    & info [ "planner" ] ~docv:"PLANNER"
        ~doc:
          "Join-order planning: $(b,static) (default, compile each rule \
           once into a cost-ordered plan, replanning only when relation \
           sizes drift), $(b,adaptive) (static plus a feedback loop: \
           observed per-step cardinalities that diverge from the \
           estimates trigger a bounded recompile with the observed values \
           substituted), $(b,greedy) (replan on every rule application — \
           the pre-plan-layer behaviour, kept as an ablation), or \
           $(b,scan) (textual literal order, no index probes).")

let plan_drift_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "plan-drift" ] ~docv:"FACTOR"
        ~doc:
          "Cardinality drift tolerance shared by the static replanning \
           check and the adaptive planner's feedback loop: a cached plan \
           is recompiled when a relation size (static) or an observed \
           per-step cardinality (adaptive) diverges from what its cost \
           model saw by more than $(docv)x plus a small slack.  Default \
           4; values below 1 are clamped.")

let apply_plan_drift = function
  | Some f -> Negdl.Plan.set_drift_factor f
  | None -> ()

let explain_arg =
  Arg.(
    value
    & flag
    & info [ "explain" ]
        ~doc:
          "After the run, print every compiled plan with estimated and \
           actual per-step cardinalities.")

let print_plans cache program =
  List.iter
    (fun plan -> Format.printf "%a@." Negdl.Plan.pp plan)
    (Negdl.Plan_cache.program_plans cache program)

let stats_arg =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:
          "Print evaluation statistics (iterations, rule applications, \
           tuples derived, index hits, stage timings) to stderr.")

let parallel_grain_arg =
  let grain_conv =
    let parse s =
      match Negdl.Engine.grain_of_string s with
      | Ok v -> Ok v
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv ~docv:"GRAIN" (parse, Negdl.Engine.pp_grain)
  in
  Arg.(
    value
    & opt grain_conv `Auto
    & info [ "parallel-grain" ] ~docv:"GRAIN"
        ~doc:
          "Morsel size for the $(b,parallel) engine's intra-rule sharding \
           (tuples of the driving input per morsel): $(b,auto) (default, \
           sized from the input and the domain count), a positive integer, \
           or $(b,rules) (never shard within a rule — whole-rule fan-out \
           only, the pre-morsel behaviour).  The computed result is \
           identical for every setting.")

let sat_par_arg =
  Arg.(
    value
    & opt int 1
    & info [ "sat-par" ] ~docv:"N"
        ~doc:
          "SAT search parallelism: run every satisfiability query as a \
           portfolio of $(docv) diversified CDCL workers racing on the \
           domain pool (first answer wins, losers are cancelled).  \
           $(b,1) (default) is the plain sequential solver.  Parallelism \
           never changes an answer, only how fast it arrives.")

(* --- snapshot helpers ------------------------------------------------------ *)

let snap_die = function
  | Ok v -> v
  | Error e -> or_die (Error (Negdl.Snapshot.error_to_string e))

let idb_of_bindings program bindings =
  List.fold_left
    (fun idb (name, rel) -> Negdl.Idb.set idb name rel)
    (Negdl.Idb.of_program program) bindings

(* Capture the run's model and write it; dies on failure (an unwritable
   snapshot the user asked for should not pass silently). *)
let save_snapshot ~program ~semantics ~db ~facts ~unknown file =
  let unknown =
    match unknown with None -> [] | Some u -> Negdl.Idb.bindings u
  in
  let image =
    snap_die
      (Negdl.Snapshot.capture ~unknown ~program ~semantics ~db
         (Negdl.Idb.bindings facts))
  in
  snap_die (Negdl.Snapshot.write_file file image)

(* --- eval ------------------------------------------------------------------ *)

let eval_cmd =
  let semantics_arg =
    let parse s =
      match Negdl.semantics_of_string s with
      | Ok v -> Ok v
      | Error msg -> Error (`Msg msg)
    in
    let print ppf s = Format.pp_print_string ppf (Negdl.semantics_to_string s) in
    Arg.(
      value
      & opt (conv ~docv:"SEMANTICS" (parse, print)) Negdl.Semantics_inflationary
      & info [ "s"; "semantics" ] ~docv:"SEMANTICS"
          ~doc:
            "One of $(b,inflationary) (default), $(b,stratified), \
             $(b,well-founded), $(b,kripke-kleene), $(b,least).")
  in
  let pred_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "pred" ] ~docv:"PRED"
          ~doc:"Print only this predicate (e.g. the program's carrier).")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Model cache: when $(docv) holds a fresh snapshot (same \
             program, semantics and EDB), load the materialised model from \
             it instead of evaluating; otherwise evaluate and (over)write \
             $(docv).  A corrupt or version-skewed file is a hard error \
             (fail closed), a merely stale one is re-evaluated.")
  in
  let run program_path db_path semantics engine planner plan_drift explain
      indexing storage stats sat_par grain pred snapshot_file =
    (* Set the default before loading, so the base relations parsed from the
       database are built in the chosen backend too. *)
    Negdl.Relation.set_default_storage storage;
    Negdl.Sat_solver.set_default_parallelism sat_par;
    Negdl.Engine.set_default_grain grain;
    apply_plan_drift plan_drift;
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let stats = if stats then Some (Negdl.Stats.create ()) else None in
    let plan_cache =
      if explain then Some (Negdl.Plan_cache.create ()) else None
    in
    let semantics_name = Negdl.semantics_to_string semantics in
    let evaluate_and_save () =
      let result =
        or_die
          (Negdl.run ~engine ~planner ?plan_cache ~indexing ~storage ?stats
             semantics program db)
      in
      (match snapshot_file with
      | None -> ()
      | Some file ->
        let bytes =
          save_snapshot ~program ~semantics:semantics_name ~db
            ~facts:result.Negdl.facts ~unknown:result.Negdl.unknown file
        in
        Format.eprintf "negdl: snapshot written to %s (%d bytes)@." file
          bytes);
      result
    in
    let result =
      match snapshot_file with
      | Some file when Sys.file_exists file -> (
        let image = snap_die (Negdl.Snapshot.read_file file) in
        let fresh =
          match
            Negdl.Snapshot.check_program image ~program
              ~semantics:semantics_name
          with
          | Error e ->
            Format.eprintf "negdl: %s; re-evaluating@."
              (Negdl.Snapshot.error_to_string e);
            false
          | Ok () ->
            image.Negdl.Snapshot.edb_digest = Negdl.Snapshot.database_digest db
            || begin
                 Format.eprintf
                   "negdl: snapshot is stale for this database; \
                    re-evaluating@.";
                 false
               end
        in
        if not fresh then evaluate_and_save ()
        else
          let r = snap_die (Negdl.Snapshot.restore ~storage image) in
          {
            Negdl.facts = idb_of_bindings program r.Negdl.Snapshot.r_idb;
            unknown =
              (match r.Negdl.Snapshot.r_unknown with
              | [] -> None
              | u -> Some (idb_of_bindings program u));
          })
      | _ -> evaluate_and_save ()
    in
    (match plan_cache with
    | Some cache -> print_plans cache program
    | None -> ());
    (match pred with
    | None -> print_idb result.Negdl.facts
    | Some name -> (
      match
        List.assoc_opt name (Negdl.Idb.bindings result.Negdl.facts)
      with
      | Some r -> Format.printf "%a@." Negdl.Relation.pp r
      | None ->
        or_die (Error (Printf.sprintf "no IDB predicate %s" name))));
    (match result.Negdl.unknown with
    | Some unknown when pred = None ->
      print_idb ~header:"-- unknown (three-valued) --" unknown
    | _ -> ());
    match stats with
    | Some s ->
      s.Negdl.Stats.extra <-
        List.filter (fun (_, v) -> v <> 0) (Negdl.Sat_stats.snapshot ());
      Negdl.Stats.harvest_contention s;
      Format.eprintf "%a@." Negdl.Stats.pp s
    | None -> ()
  in
  let doc = "evaluate a program on a database" in
  Cmd.v
    (Cmd.info "eval" ~doc)
    Term.(
      const run $ program_arg $ database_arg $ semantics_arg $ engine_arg
      $ planner_arg $ plan_drift_arg $ explain_arg $ indexing_arg
      $ storage_arg $ stats_arg $ sat_par_arg $ parallel_grain_arg $ pred_arg
      $ snapshot_arg)

(* --- fixpoints ---------------------------------------------------------------- *)

let fixpoints_cmd =
  let limit_arg =
    Arg.(
      value
      & opt int 256
      & info [ "limit" ] ~docv:"N" ~doc:"Census cap (default 256).")
  in
  let enumerate_arg =
    Arg.(
      value & flag
      & info [ "enumerate" ] ~doc:"Print every fixpoint found (up to the cap).")
  in
  let sat_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sat-budget" ] ~docv:"CONFLICTS"
          ~doc:
            "Bound the existence SAT search to $(docv) CDCL conflicts (per \
             portfolio worker).  Exhaustion prints \"fixpoint exists: \
             unknown (...)\" and skips the dependent queries — the run \
             still exits cleanly with status 0.")
  in
  let count_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count-budget" ] ~docv:"NODES"
          ~doc:
            "Also run the exact #SAT census with a budget of $(docv) \
             counting nodes; prints \"exact census: N\", or a lower bound \
             when the budget runs out.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Binary EDB cache: load the database from $(docv) instead of \
             parsing $(i,DATABASE) when the file exists and was written for \
             this program; otherwise parse and (over)write it.  The cached \
             EDB is trusted (checksummed, but not compared against the \
             text file) — delete $(docv) after editing $(i,DATABASE).")
  in
  let run program_path db_path storage planner plan_drift explain limit
      enumerate sat_par grain sat_budget count_budget stats snapshot_file =
    Negdl.Relation.set_default_storage storage;
    Negdl.Sat_solver.set_default_parallelism sat_par;
    Negdl.Engine.set_default_grain grain;
    apply_plan_drift plan_drift;
    Negdl.Sat_stats.reset ();
    let program = or_die (load_program program_path) in
    let load_and_save () =
      let db = or_die (load_database db_path) in
      (match snapshot_file with
      | None -> ()
      | Some file ->
        let image =
          snap_die
            (Negdl.Snapshot.capture ~program ~semantics:"edb" ~db [])
        in
        let bytes = snap_die (Negdl.Snapshot.write_file file image) in
        Format.eprintf "negdl: EDB snapshot written to %s (%d bytes)@." file
          bytes);
      db
    in
    let db =
      match snapshot_file with
      | Some file when Sys.file_exists file -> (
        let image = snap_die (Negdl.Snapshot.read_file file) in
        match
          Negdl.Snapshot.check_program image ~program ~semantics:"edb"
        with
        | Error e ->
          Format.eprintf "negdl: %s; re-reading the database@."
            (Negdl.Snapshot.error_to_string e);
          load_and_save ()
        | Ok () ->
          (snap_die (Negdl.Snapshot.restore ~storage image))
            .Negdl.Snapshot.r_db)
      | _ -> load_and_save ()
    in
    let plan_cache =
      if explain then Some (Negdl.Plan_cache.create ()) else None
    in
    let report =
      Negdl.analyze_fixpoints ~planner ?plan_cache ~count_limit:limit
        ?sat_budget ?count_budget program db
    in
    Format.printf "ground atoms:    %d@." report.Negdl.ground_atoms;
    Format.printf "ground rules:    %d@." report.Negdl.ground_rules;
    (match report.Negdl.existence_unknown with
    | Some reason ->
      Format.printf "fixpoint exists: unknown (%s)@."
        (Negdl.Sat_outcome.reason_to_string reason)
    | None ->
      Format.printf "fixpoint exists: %b@." report.Negdl.has_fixpoint;
      (match report.Negdl.fixpoint_count with
      | Some n when n >= limit ->
        Format.printf "fixpoints:       >= %d (capped)@." n
      | Some n -> Format.printf "fixpoints:       %d@." n
      | None -> ());
      (match report.Negdl.exact_count with
      | Some c ->
        Format.printf "exact census:    %a@." Negdl.Sat_outcome.pp_count c
      | None -> ());
      Format.printf "unique:          %b@." report.Negdl.unique;
      (match report.Negdl.least with
      | Some least ->
        Format.printf "least fixpoint:  yes@.";
        print_idb ~header:"-- least fixpoint --" least
      | None -> Format.printf "least fixpoint:  no@.");
      if enumerate then begin
        let solver = Negdl.Fixpoints.prepare ~planner ?plan_cache program db in
        List.iteri
          (fun i fp ->
            Format.printf "-- fixpoint %d --@." (i + 1);
            print_idb fp)
          (Negdl.Fixpoints.enumerate ~limit solver)
      end
      else
        match report.Negdl.example with
        | Some fp when report.Negdl.has_fixpoint ->
          print_idb ~header:"-- example fixpoint --" fp
        | _ -> ());
    (match plan_cache with
    | Some cache -> print_plans cache program
    | None -> ());
    if stats then
      List.iter
        (fun (name, v) -> Format.eprintf "%-18s %d@." (name ^ ":") v)
        (List.filter (fun (_, v) -> v <> 0) (Negdl.Sat_stats.snapshot ()))
  in
  let doc = "decide existence / uniqueness / least fixpoints (Section 3)" in
  Cmd.v
    (Cmd.info "fixpoints" ~doc)
    Term.(
      const run $ program_arg $ database_arg $ storage_arg $ planner_arg
      $ plan_drift_arg $ explain_arg $ limit_arg $ enumerate_arg
      $ sat_par_arg $ parallel_grain_arg $ sat_budget_arg $ count_budget_arg
      $ stats_arg $ snapshot_arg)

(* --- explain ----------------------------------------------------------------- *)

let explain_cmd =
  let database_opt_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"DATABASE"
          ~doc:
            "Optional database (facts) file; its relation cardinalities \
             feed the cost model.  Without one, every relation is assumed \
             to hold 16 tuples over an 8-constant universe.")
  in
  let feedback_arg =
    Arg.(
      value
      & flag
      & info [ "feedback" ]
          ~doc:
            "Evaluate the program (inflationary semantics) before \
             printing, and show each cached plan's feedback record — \
             observed per-step cardinalities against the estimates, \
             recorded overrides, generation, and whether the adaptive \
             planner would replan it.  Requires a $(i,DATABASE).")
  in
  let run program_path db_path planner plan_drift feedback =
    apply_plan_drift plan_drift;
    let program = or_die (load_program program_path) in
    let db = Option.map (fun p -> or_die (load_database p)) db_path in
    if feedback then begin
      let db =
        match db with
        | Some db -> db
        | None ->
          or_die
            (Error
               "--feedback executes the plans to gather observed \
                cardinalities; give a DATABASE")
      in
      let cache = Negdl.Plan_cache.create () in
      (* Limit programs are only defined under the stratified semantics;
         everything else keeps the historical inflationary run. *)
      let semantics =
        if program.Negdl.Ast.limits = [] then Negdl.Semantics_inflationary
        else Negdl.Semantics_stratified
      in
      (match Negdl.run ~planner ~plan_cache:cache semantics program db with
      | Ok _ -> ()
      | Error e -> or_die (Error e));
      List.iter
        (fun plan -> Format.printf "%a@." Negdl.Plan.pp_feedback plan)
        (Negdl.Plan_cache.program_plans cache program)
    end
    else
    let schema =
      match Negdl.Ast.idb_schema program with
      | Ok s -> s
      | Error msg -> or_die (Error msg)
    in
    let universe_size, sizes =
      match db with
      | None -> (8, fun _ _ -> 16)
      | Some db ->
        let u = max 1 (List.length (Negdl.Database.universe db)) in
        let src = Negdl.Engine.database_source db in
        ( u,
          fun (occ : Negdl.Plan.occurrence) arity ->
            (* EDB sizes come from the database; IDB relations (absent
               there) get a neutral universe-sized guess. *)
            if Negdl.Schema.mem occ.Negdl.Plan.pred schema then u
            else Negdl.Relation.cardinal (src.Negdl.Plan.find occ.pred arity)
        )
    in
    let limits =
      List.map
        (fun (l : Negdl.Ast.limit) -> (l.Negdl.Ast.limit_pred, (l.Negdl.Ast.kind, l.Negdl.Ast.column)))
        program.Negdl.Ast.limits
    in
    List.iter
      (fun rule ->
        let full =
          Negdl.Plan.compile ~planner ~limits ~sizes ~universe_size rule
        in
        Format.printf "%a@." Negdl.Plan.pp full;
        List.iter
          (fun j ->
            let d =
              Negdl.Plan.compile ~planner ~limits
                ~variant:(Negdl.Plan.Delta j) ~sizes ~universe_size rule
            in
            Format.printf "%a@." Negdl.Plan.pp d)
          (Negdl.Saturate.delta_positions ~schema rule))
      program.Negdl.Ast.rules
  in
  let doc = "print the physical plans a program compiles to" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compiles every rule under the chosen planner and prints the \
         resulting operator pipelines with their estimated per-step \
         cardinalities: the full plan first, then one delta-specialized \
         variant per positive occurrence of an evolving (IDB) predicate — \
         the plans semi-naive evaluation would execute.  Estimates only: \
         nothing is evaluated, so no actual row counts are shown (use \
         $(b,--explain) on $(b,eval) or $(b,fixpoints) for those, or \
         $(b,--feedback) here to evaluate and print each plan's observed \
         cardinality profile).";
    ]
  in
  Cmd.v
    (Cmd.info "explain" ~doc ~man)
    Term.(
      const run $ program_arg $ database_opt_arg $ planner_arg
      $ plan_drift_arg $ feedback_arg)

(* --- query ------------------------------------------------------------------- *)

let query_cmd =
  let goal_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"GOAL"
          ~doc:
            "Query atom, e.g. 's(v0, Y)' — constants lowercase, variables \
             uppercase.")
  in
  let run program_path db_path goal engine =
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let goal_atom =
      match Negdl.Parser.parse_rule (goal ^ ".") with
      | Ok rule when rule.Negdl.Ast.body = [] -> rule.Negdl.Ast.head
      | Ok _ -> or_die (Error "the goal must be a single atom")
      | Error msg -> or_die (Error msg)
    in
    match Negdl.Query.answer ~engine program db ~query:goal_atom with
    | Error msg -> or_die (Error msg)
    | Ok answers ->
      Format.printf "%a@." Negdl.Relation.pp answers;
      Format.printf "%% %d answer(s)@." (Negdl.Relation.cardinal answers)
  in
  let doc = "answer a goal on a positive program via magic sets" in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(const run $ program_arg $ database_arg $ goal_arg $ engine_arg)

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) instead of stdin: \
             clients connect (one at a time) and speak the same line \
             protocol; $(b,quit) ends one client's session, $(b,shutdown) \
             stops the server.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Warm restart: when $(docv) exists, rebuild the serving state \
             from it instead of saturating ($(i,DATABASE) is not read); any \
             problem with the file — corruption, version skew, a different \
             program — is a hard error.  When $(docv) does not exist, \
             materialise normally and checkpoint to it before serving.")
  in
  let run program_path db_path engine planner plan_drift indexing storage
      stats grain socket snapshot_file =
    Negdl.Relation.set_default_storage storage;
    Negdl.Engine.set_default_grain grain;
    apply_plan_drift plan_drift;
    let program = or_die (load_program program_path) in
    let stats_rec = Negdl.Stats.create () in
    let cold_start () =
      let db = or_die (load_database db_path) in
      let state =
        or_die
          (Negdl.Serve.create ~engine ~planner ~indexing ~storage ~grain
             ~stats:stats_rec program db)
      in
      (match snapshot_file with
      | None -> ()
      | Some file ->
        let bytes = or_die (Negdl.Serve.snapshot_to state file) in
        Format.eprintf "negdl: snapshot written to %s (%d bytes)@." file
          bytes);
      state
    in
    let state =
      match snapshot_file with
      | Some file when Sys.file_exists file ->
        let image = snap_die (Negdl.Snapshot.read_file file) in
        or_die
          (Negdl.Serve.create_restored ~engine ~planner ~indexing ~storage
             ~grain ~stats:stats_rec program image)
      | _ -> cold_start ()
    in
    (* One client session over a raw file descriptor; returns how it
       ended.  The loop blocks for input, then drains whatever else is
       already available (select with a zero timeout) before splitting
       into lines, so a scripted or pipelined client's consecutive write
       lines reach {!Serve.handle_batch} as one block and coalesce into a
       single DRed update; interactively each line arrives alone and
       behaves exactly like {!Serve.handle_line}. *)
    let session fd oc =
      let pending = Buffer.create 256 in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        match Unix.select [ fd ] [] [] 0.0 with
        | [ _ ], _, _ ->
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes pending chunk 0 n;
            drain ()
          end
        | _ -> ()
      in
      (* Complete lines out of [pending]; a trailing partial line stays. *)
      let take_lines () =
        let data = Buffer.contents pending in
        Buffer.clear pending;
        match String.rindex_opt data '\n' with
        | None ->
          Buffer.add_string pending data;
          []
        | Some i ->
          Buffer.add_substring pending data (i + 1)
            (String.length data - i - 1);
          String.split_on_char '\n' (String.sub data 0 i)
      in
      let emit st response =
        match st with
        | `Quit | `Shutdown -> st
        | `Continue -> (
          match response with
          | Negdl.Serve.Reply lines ->
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              lines;
            `Continue
          | Negdl.Serve.Quit ->
            output_string oc "bye\n";
            `Quit
          | Negdl.Serve.Shutdown ->
            output_string oc "bye\n";
            `Shutdown)
      in
      let process lines =
        match lines with
        | [] -> `Continue
        | _ ->
          let st =
            List.fold_left emit `Continue
              (Negdl.Serve.handle_batch state lines)
          in
          flush oc;
          st
      in
      let rec loop () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error _ -> `Eof
        | 0 -> (
          (* EOF: an unterminated final line is still a command. *)
          let tail = Buffer.contents pending in
          Buffer.clear pending;
          if tail = "" then `Eof
          else
            match process [ tail ] with
            | `Continue -> `Eof
            | `Quit -> `Quit
            | `Shutdown -> `Shutdown)
        | n -> (
          Buffer.add_subbytes pending chunk 0 n;
          drain ();
          match process (take_lines ()) with
          | `Continue -> loop ()
          | `Quit -> `Quit
          | `Shutdown -> `Shutdown)
      in
      loop ()
    in
    (match socket with
    | None -> ignore (session Unix.stdin stdout)
    | Some path ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let client, _ = Unix.accept sock in
        let oc = Unix.out_channel_of_descr client in
        let outcome = try session client oc with Sys_error _ -> `Eof in
        (try flush oc with Sys_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ());
        match outcome with `Shutdown -> () | `Quit | `Eof -> accept_loop ()
      in
      accept_loop ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ());
    if stats then begin
      Negdl.Stats.harvest_contention stats_rec;
      Format.eprintf "%a@." Negdl.Stats.pp stats_rec
    end
  in
  let doc = "serve a materialised model with incremental updates" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads the database, materialises the program's stratified model \
         once, then reads line commands from stdin (or a Unix socket): \
         $(b,insert <facts>), $(b,delete <facts>), $(b,query <atom>[; \
         <atom>]...), $(b,stats), $(b,snapshot <file>), \
         $(b,restore <file>), $(b,quit).  Updates are applied \
         incrementally (delta-driven DRed over compiled plans) — never by \
         re-saturation — and queries answer from a version-tagged result \
         cache over the current snapshot.  $(b,snapshot) checkpoints the \
         pinned immutable model without pausing the update loop; \
         $(b,restore) warm-restarts from a checkpoint, resetting the \
         version and clearing the query cache.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ program_arg $ database_arg $ engine_arg $ planner_arg
      $ plan_drift_arg $ indexing_arg $ storage_arg $ stats_arg
      $ parallel_grain_arg $ socket_arg $ snapshot_arg)

(* --- snapshot / restore ----------------------------------------------------- *)

let snapshot_file_arg =
  Arg.(
    required
    & pos 2 (some string) None
    & info [] ~docv:"FILE" ~doc:"Snapshot file to write.")

let snapshot_cmd =
  let semantics_arg =
    let parse s =
      match Negdl.semantics_of_string s with
      | Ok v -> Ok v
      | Error msg -> Error (`Msg msg)
    in
    let print ppf s = Format.pp_print_string ppf (Negdl.semantics_to_string s) in
    Arg.(
      value
      & opt (conv ~docv:"SEMANTICS" (parse, print)) Negdl.Semantics_stratified
      & info [ "s"; "semantics" ] ~docv:"SEMANTICS"
          ~doc:
            "One of $(b,inflationary), $(b,stratified) (default), \
             $(b,well-founded), $(b,kripke-kleene), $(b,least).")
  in
  let run program_path db_path file semantics engine planner storage =
    Negdl.Relation.set_default_storage storage;
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let result =
      or_die (Negdl.run ~engine ~planner ~storage semantics program db)
    in
    let bytes =
      save_snapshot ~program
        ~semantics:(Negdl.semantics_to_string semantics)
        ~db ~facts:result.Negdl.facts ~unknown:result.Negdl.unknown file
    in
    let image = snap_die (Negdl.Snapshot.read_file file) in
    let tuples =
      List.fold_left
        (fun acc (ri : Negdl.Snapshot.relation_image) ->
          acc + ri.Negdl.Snapshot.row_count)
        0 image.Negdl.Snapshot.relations
    in
    Format.printf "wrote %s: %d bytes, %d symbols, %d relations, %d tuples@."
      file bytes
      (Array.length image.Negdl.Snapshot.symbols)
      (List.length image.Negdl.Snapshot.relations)
      tuples
  in
  let doc = "materialise a model and write a binary snapshot" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Evaluates the program under the chosen semantics and persists the \
         materialised model — symbol dictionary, packed EDB/IDB tuples, \
         program and EDB fingerprints — in the versioned, checksummed \
         binary snapshot format.  $(b,negdl restore), $(b,negdl eval \
         --snapshot), $(b,negdl serve --snapshot) and the serve protocol's \
         $(b,restore) command all load it back without re-saturating.";
    ]
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc ~man)
    Term.(
      const run $ program_arg $ database_arg $ snapshot_file_arg
      $ semantics_arg $ engine_arg $ planner_arg $ storage_arg)

let restore_cmd =
  let file_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file to load.")
  in
  let pred_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "pred" ] ~docv:"PRED" ~doc:"Print only this predicate.")
  in
  let run program_path file storage pred =
    Negdl.Relation.set_default_storage storage;
    let program = or_die (load_program program_path) in
    let image = snap_die (Negdl.Snapshot.read_file file) in
    (* The file's own semantics tag is authoritative for display; the
       program fingerprint is what must match the program we were given. *)
    snap_die
      (Negdl.Snapshot.check_program image ~program
         ~semantics:image.Negdl.Snapshot.semantics);
    let r = snap_die (Negdl.Snapshot.restore ~storage image) in
    let facts = idb_of_bindings program r.Negdl.Snapshot.r_idb in
    (match pred with
    | None -> print_idb facts
    | Some name -> (
      match List.assoc_opt name (Negdl.Idb.bindings facts) with
      | Some rel -> Format.printf "%a@." Negdl.Relation.pp rel
      | None -> or_die (Error (Printf.sprintf "no IDB predicate %s" name))));
    match r.Negdl.Snapshot.r_unknown with
    | [] -> ()
    | u when pred = None ->
      print_idb ~header:"-- unknown (three-valued) --"
        (idb_of_bindings program u)
    | _ -> ()
  in
  let doc = "load a binary snapshot and print the model it holds" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a snapshot written by $(b,negdl snapshot) (or the serve \
         protocol) and prints the materialised model without evaluating \
         anything.  Reading fails closed: a truncated, corrupted or \
         version-skewed file, or one written for a different program than \
         $(i,PROGRAM), is reported precisely and nothing is loaded.";
    ]
  in
  Cmd.v
    (Cmd.info "restore" ~doc ~man)
    Term.(const run $ program_arg $ file_arg $ storage_arg $ pred_arg)

(* --- why -------------------------------------------------------------------- *)

let why_cmd =
  let fact_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"FACT"
          ~doc:"A ground atom, e.g. 's(v0, v3)', to explain under the \
                inflationary semantics.")
  in
  let run program_path db_path fact =
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let atom =
      match Negdl.Parser.parse_rule (fact ^ ".") with
      | Ok rule when rule.Negdl.Ast.body = [] -> rule.Negdl.Ast.head
      | Ok _ -> or_die (Error "the fact must be a single atom")
      | Error msg -> or_die (Error msg)
    in
    let tuple =
      Negdl.Tuple.of_list
        (List.map
           (function
             | Negdl.Ast.Const c -> c
             | Negdl.Ast.Var x ->
               or_die
                 (Error
                    (Printf.sprintf "the fact must be ground; %s is a variable"
                       x)))
           atom.Negdl.Ast.args)
    in
    match Negdl.Provenance.explain program db ~pred:atom.Negdl.Ast.pred tuple with
    | Some j -> print_endline (Negdl.Provenance.to_string j)
    | None ->
      Format.printf "not derived under the inflationary semantics@.";
      exit 2
  in
  let doc = "explain why a fact holds under the inflationary semantics" in
  Cmd.v
    (Cmd.info "why" ~doc)
    Term.(const run $ program_arg $ database_arg $ fact_arg)

(* --- stable ------------------------------------------------------------------ *)

let stable_cmd =
  let limit_arg =
    Arg.(
      value & opt int 64
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum stable models printed.")
  in
  let run program_path db_path limit =
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let solver = Negdl.Fixpoints.prepare program db in
    let stable = Negdl.Stable.stable_models ~limit solver in
    Format.printf "stable models: %d%s@." (List.length stable)
      (if List.length stable >= limit then " (capped)" else "");
    List.iteri
      (fun i m ->
        Format.printf "-- stable model %d --@." (i + 1);
        print_idb m)
      stable
  in
  let doc = "enumerate stable models (answer sets)" in
  Cmd.v
    (Cmd.info "stable" ~doc)
    Term.(const run $ program_arg $ database_arg $ limit_arg)

(* --- sat -------------------------------------------------------------------- *)

let cnf_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"CNF" ~doc:"A DIMACS CNF file.")

let load_cnf path =
  match read_file path with
  | Error msg -> Error msg
  | Ok text -> (
    match Negdl.Dimacs.parse text with
    | Ok cnf -> Ok cnf
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let sat_cmd =
  let portfolio_arg =
    Arg.(
      value
      & opt int 1
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race $(docv) diversified CDCL workers; the first definite \
             answer wins and cancels the rest.  $(b,1) (default) is the \
             plain sequential solver.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:
            "Give up after $(docv) conflicts (per worker), printing \
             \"s UNKNOWN\" and exiting 0.")
  in
  let run cnf_path portfolio budget =
    let cnf = or_die (load_cnf cnf_path) in
    let mode =
      if portfolio >= 2 then `Portfolio portfolio else `Sequential
    in
    match Negdl.Sat_solver.solve_outcome ~mode ?conflict_budget:budget cnf with
    | Negdl.Sat_outcome.Unsat ->
      Format.printf "s UNSATISFIABLE@.";
      exit 20
    | Negdl.Sat_outcome.Sat model ->
      Format.printf "s SATISFIABLE@.v ";
      for v = 1 to Negdl.Cnf.num_vars cnf do
        Format.printf "%d " (if model.(v) then v else -v)
      done;
      Format.printf "0@."
    | Negdl.Sat_outcome.Unknown reason ->
      Format.printf "c %s@.s UNKNOWN@."
        (Negdl.Sat_outcome.reason_to_string reason)
  in
  let doc = "solve a DIMACS CNF with the built-in CDCL solver" in
  Cmd.v
    (Cmd.info "sat" ~doc)
    Term.(const run $ cnf_arg $ portfolio_arg $ budget_arg)

(* --- sat2fp ----------------------------------------------------------------- *)

let sat2fp_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"BASE"
          ~doc:
            "Write $(docv).dl (the fixed program pi_SAT) and $(docv).facts \
             (the database D(I)); default prints both to stdout.")
  in
  let run cnf_path out =
    let cnf = or_die (load_cnf cnf_path) in
    let db = Negdl.Sat_db.database_of_cnf cnf in
    let program_text =
      Negdl.Pretty.program_to_string Negdl.Sat_db.program ^ "\n"
    in
    let facts_text =
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        ("#universe "
        ^ String.concat " "
            (List.map Negdl.Symbol.name (Negdl.Database.universe db))
        ^ ".\n");
      List.iter
        (fun (name, rel) ->
          Negdl.Relation.iter
            (fun t ->
              Buffer.add_string buf
                (Printf.sprintf "%s(%s).\n" name
                   (String.concat ", "
                      (List.map Negdl.Symbol.name (Negdl.Tuple.to_list t)))))
            rel)
        (Negdl.Database.relations db);
      Buffer.contents buf
    in
    match out with
    | None ->
      Format.printf "%% pi_SAT@.%s%% D(I)@.%s" program_text facts_text
    | Some base ->
      let write path text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      write (base ^ ".dl") program_text;
      write (base ^ ".facts") facts_text;
      Format.printf "wrote %s.dl and %s.facts@." base base
  in
  let doc =
    "emit Example 1's reduction: a CNF as (pi_SAT, D(I)) program/database \
     files"
  in
  Cmd.v (Cmd.info "sat2fp" ~doc) Term.(const run $ cnf_arg $ out_arg)

(* --- stratify -------------------------------------------------------------------- *)

let stratify_cmd =
  let run program_path =
    let program = or_die (load_program program_path) in
    match Negdl.Stratify.stratify program with
    | Negdl.Stratify.Not_stratifiable { offending = p, q } ->
      Format.printf
        "not stratifiable: %s depends negatively on %s within a recursive \
         component@."
        p q;
      exit 2
    | Negdl.Stratify.Not_limit_stratifiable { pred; rule } ->
      Format.printf "%s@."
        (Negdl.Stratify.limit_error_to_string ~pred ~rule);
      exit 2
    | Negdl.Stratify.Stratified { strata; _ } ->
      List.iteri
        (fun i preds ->
          Format.printf "stratum %d: %s@." i (String.concat ", " preds))
        strata
  in
  let doc = "compute the stratification of a program" in
  Cmd.v (Cmd.info "stratify" ~doc) Term.(const run $ program_arg)

(* --- check ----------------------------------------------------------------------- *)

let check_cmd =
  let run program_path =
    let program = or_die (load_program program_path) in
    Format.printf "%s@." (Negdl.Check.describe program);
    match Negdl.Check.validate program with
    | Ok _ -> ()
    | Error _ -> exit 2
  in
  let doc = "static well-formedness report" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ program_arg)

(* --- ground ---------------------------------------------------------------------- *)

let ground_cmd =
  let run program_path db_path =
    let program = or_die (load_program program_path) in
    let db = or_die (load_database db_path) in
    let g = Negdl.Ground.ground program db in
    Format.printf "%a@." Negdl.Ground.pp g;
    Format.printf "%% %d atoms, %d instances@." (Negdl.Ground.atom_count g)
      (Negdl.Ground.rule_count g)
  in
  let doc = "print the propositional grounding of (program, database)" in
  Cmd.v (Cmd.info "ground" ~doc) Term.(const run $ program_arg $ database_arg)

let () =
  let doc = "a DATALOG-with-negation engine (Kolaitis-Papadimitriou semantics)" in
  let info = Cmd.info "negdl" ~version:Negdl.version ~doc in
  exit (Cmd.eval (Cmd.group info
       [
         eval_cmd;
         fixpoints_cmd;
         explain_cmd;
         query_cmd;
         serve_cmd;
         snapshot_cmd;
         restore_cmd;
         why_cmd;
         stable_cmd;
         sat_cmd;
         sat2fp_cmd;
         stratify_cmd;
         check_cmd;
         ground_cmd;
       ]))
