(* The experiment & benchmark harness.

   "Why Not Negation by Fixpoint?" is a theory paper with no numeric tables,
   so the objects to regenerate are its concrete checkable claims.  Part 1
   reruns every experiment E1-E10 from EXPERIMENTS.md and prints a
   paper-expectation vs measured table.  Part 2 runs Bechamel
   micro-benchmarks — one Test.make per experiment family plus the ablation
   comparisons (naive vs semi-naive, brute-force vs SAT search).

   Part 3 ("eval") benchmarks the evaluation engine itself — cached vs
   per-call vs no indexing, and the parallel engine vs sequential — and
   writes the measurements to BENCH_eval.json in the current directory.

   Part 4 ("storage") is the relation-backend ablation: the packed hashed
   backend vs the tree-set seed, crossed with cached vs per-call indexing
   on an iteration-heavy transitive closure, plus the E1 cycle census, with
   E1-E8 parity fingerprints under both backends.  Writes BENCH_relalg.json
   and exits nonzero if the backends diverge on any count.

   Part 5 ("satpar") is the parallel-search benchmark: the portfolio CDCL
   racer vs the sequential solver on a band of hard random 3-CNF, and the
   component-parallel exact census vs flat enumeration on k x C_4, with
   answer-parity checks.  Writes BENCH_sat.json and exits nonzero if any
   answer diverges.

   Part 6 ("plan") is the join-planner ablation: compile-once static plans
   vs per-application greedy replanning vs unplanned textual scans, on
   iteration-heavy and join-dominated E7/E8 workloads, with E1-E8 parity
   fingerprints under all three planners and an allocation bound on the
   plan executor's hot loop.  Writes BENCH_plan.json and exits nonzero on
   any divergence.

   Part 7 ("par") is the intra-rule parallelism benchmark: morsel-sharded
   plan execution vs whole-rule fan-out on a single-heavy-rule transitive
   closure, the par=1 sharding-tax bound against the sequential engine, a
   domain-scaling curve (one row per pool size in {1,2,4,8}, capped by
   NEGDL_DOMAINS or the host's core count, with store-contention counters
   per row), a merge microbench pitting the partitioned builder barrier
   against the seed's set-union merge, model parity across the grain
   ablation for every saturation semantics, and fingerprint parity across
   store partition counts (fresh subprocesses under NEGDL_PARTITIONS in
   {1,2,4,8}).  Writes BENCH_par.json (with the host's domain count in
   the header — the >= 2x morsel speedup check is skipped below 4
   domains, unreachable curve points are marked skipped) and exits
   nonzero on any divergence, if the partitioned merge is not faster than
   the seed path, or if a multi-domain curve row shows flat contention
   counters.

   Part 8 ("serve") is the incremental-serving benchmark: a long-lived
   server absorbing single-fact and batched update streams (delete +
   re-derive, insert, mixed read/write with concurrent cached queries)
   against the cost of re-saturating from scratch on every batch, with
   sustained updates/sec and p50/p99 query latency.  Writes
   BENCH_serve.json and exits nonzero if the maintained model ever
   diverges from from-scratch stratified saturation or if a full
   (non-delta) rule application shows up on the incremental path.

   Part 9 ("snap") is the snapshot persistence benchmark: saturate,
   checkpoint to the versioned binary format, and compare restoring the
   file against re-saturating from cold, on transitive closure and on the
   serving reachability program.  Writes BENCH_snap.json (file size,
   bytes/tuple, restore speedup) and exits nonzero if the restored model
   differs or, in full mode, if restore is less than 10x faster than cold
   saturation on the large TC configuration.

   Part 10 ("agg") is the limit-predicate benchmark: shortest-path (min)
   and critical-path (max) bounds over seeded weighted graphs, limit-aware
   tightening vs the pair-materializing Datalog-not encoding of the same
   query, with dominant-filter parity, limit-model fingerprint parity
   across storage backends x planners x engines x grains, E1-E8
   fingerprint invariance, and an incremental serve session under mixed
   insert/delete that must keep dred full applications at 0.  Writes
   BENCH_agg.json and exits nonzero on any divergence or if tightening is
   less than 5x faster on the min workload (the gate is skipped, and
   marked as such, only if the generated workload has fewer than 2
   strata).

   Run with:  dune exec bench/main.exe                    (parts 1 and 2)
              dune exec bench/main.exe -- tables          (part 1 only)
              dune exec bench/main.exe -- micro           (part 2 only)
              dune exec bench/main.exe -- eval            (part 3 only)
              dune exec bench/main.exe -- storage [quick] (part 4 only)
              dune exec bench/main.exe -- satpar [quick]  (part 5 only)
              dune exec bench/main.exe -- plan [quick]    (part 6 only)
              dune exec bench/main.exe -- par [quick]     (part 7 only)
              dune exec bench/main.exe -- serve [quick]   (part 8 only)
              dune exec bench/main.exe -- snap [quick]    (part 9 only)
              dune exec bench/main.exe -- agg [quick]     (part 10 only) *)

open Negdl

let section title =
  Format.printf "@.=== %s ===@." title

let row fmt = Format.printf fmt

let ok b = if b then "ok" else "MISMATCH"

let pi1 = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let tc_program =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let db_of g = Digraph.to_database g

(* --- E1: the Section 2 fixpoint census ----------------------------------- *)

let e1 () =
  section "E1  Fixpoint census of pi_1 (Section 2 example)";
  row "  %-10s %-10s %-10s %-8s %-6s@." "graph" "expected" "measured" "unique"
    "least";
  let run name g expected =
    let report = analyze_fixpoints ~count_limit:1024 pi1 (db_of g) in
    let measured = Option.value ~default:(-1) report.fixpoint_count in
    row "  %-10s %-10s %-10d %-8b %-6b %s@." name expected measured
      report.unique (report.least <> None)
      (ok (string_of_int measured = expected))
  in
  for n = 2 to 8 do
    run (Printf.sprintf "L_%d" n) (Generate.path n) "1"
  done;
  for n = 3 to 10 do
    run
      (Printf.sprintf "C_%d" n)
      (Generate.cycle n)
      (if n mod 2 = 0 then "2" else "0")
  done;
  for k = 1 to 4 do
    run
      (Printf.sprintf "%dxC_4" k)
      (Generate.disjoint_copies k (Generate.cycle 4))
      (string_of_int (1 lsl k))
  done;
  (* Larger k via exact #SAT counting (component decomposition): the 2^k
     growth measured without enumerating the fixpoints. *)
  row "  exact census (no enumeration), k x C_4:@.";
  List.iter
    (fun k ->
      let g = Generate.disjoint_copies k (Generate.cycle 4) in
      let solver = Fixpoints.prepare pi1 (db_of g) in
      match Fixpoints.count_exact solver with
      | Satlib.Outcome.Exact n ->
        row "  %-10s %-10d %-10d %s@."
          (Printf.sprintf "%dxC_4" k)
          (1 lsl k) n
          (ok (n = 1 lsl k))
      | Satlib.Outcome.Lower_bound _ ->
        row "  %-10s (budget exceeded)@." (Printf.sprintf "%dxC_4" k))
    [ 6; 8; 10; 12 ]

(* --- E2: SAT <-> fixpoint existence (Example 1 / Theorem 1) -------------- *)

let e2 () =
  section "E2  pi_SAT: satisfiability = fixpoint existence, models = fixpoints";
  row "  %-24s %-6s %-10s %-10s@." "instance" "sat?" "models" "fixpoints";
  let run name cnf =
    let sat = Sat_brute.is_satisfiable cnf in
    let models = Sat_brute.count_models cnf in
    let solver = Sat_db.solver cnf in
    let exists = Fixpoints.exists solver in
    let fixpoints = Fixpoints.count solver in
    row "  %-24s %-6b %-10d %-10d %s@." name sat models fixpoints
      (ok (sat = exists && models = fixpoints))
  in
  run "forced-sat 6v 20c" (Sat_workload.forced_sat ~seed:3 ~vars:6 ~clauses:20 ~k:3);
  run "pigeonhole 2" (Sat_workload.pigeonhole 2);
  for seed = 1 to 6 do
    run
      (Printf.sprintf "random 3cnf seed %d" seed)
      (Sat_workload.random_3cnf ~seed ~vars:5 ~clauses:(10 + (2 * seed)))
  done

(* --- E3: the generic Fagin compiler --------------------------------------- *)

let kernel_sentence =
  let open Fo in
  {
    Eso.second_order = [ ("S", 1) ];
    matrix =
      forall [ "x" ]
        (exists [ "y" ]
           (Or
              ( atom "S" [ var "x" ],
                And (atom "e" [ var "x"; var "y" ], atom "S" [ var "y" ]) )));
  }

let kernel_compiled =
  lazy
    (match Fagin.compile_sentence kernel_sentence with
    | Ok c -> c
    | Error e -> failwith e)

let e3 () =
  section "E3  Theorem 1 compiler: ESO sentence -> program, deciders agree";
  let compiled = Lazy.force kernel_compiled in
  row "  compiled program: %d rules, q=%s, t=%s@."
    (List.length compiled.Fagin.program.Ast.rules)
    compiled.Fagin.q_pred compiled.Fagin.t_pred;
  row "  %-12s %-6s %-9s@." "graph" "eso" "fixpoint";
  List.iter
    (fun (name, g) ->
      let db = db_of g in
      let eso = Eso.holds db kernel_sentence in
      let fp = Fagin.has_fixpoint compiled db in
      row "  %-12s %-6b %-9b %s@." name eso fp (ok (eso = fp)))
    [
      ("L_3", Generate.path 3);
      ("C_3", Generate.cycle 3);
      ("C_4", Generate.cycle 4);
      ("empty_3", Digraph.make 3 []);
      ("star_4", Generate.star 4);
      ("random", Generate.random ~seed:12 ~n:4 ~p:0.4);
    ]

(* --- E4: unique fixpoints (Theorem 2) -------------------------------------- *)

let e4 () =
  section "E4  Theorem 2: unique fixpoint iff unique satisfying assignment";
  row "  %-24s %-8s %-14s@." "instance" "models" "unique fixpoint";
  for k = 0 to 4 do
    let cnf = Sat_workload.exactly_k_models 3 k in
    let unique = Fixpoints.has_unique (Sat_db.solver cnf) in
    row "  %-24s %-8d %-14b %s@."
      (Printf.sprintf "engineered k=%d" k)
      k unique
      (ok (unique = (k = 1)))
  done;
  for seed = 1 to 4 do
    let cnf = Sat_workload.random_kcnf ~seed ~vars:4 ~clauses:8 ~k:2 in
    let models = Sat_brute.count_models cnf in
    let unique = Fixpoints.has_unique (Sat_db.solver cnf) in
    row "  %-24s %-8d %-14b %s@."
      (Printf.sprintf "random 2cnf seed %d" seed)
      models unique
      (ok (unique = (models = 1)))
  done

(* --- E5: least fixpoints (Theorem 3) ---------------------------------------- *)

let e5 () =
  section "E5  Theorem 3: least fixpoint = intersection-of-all-fixpoints test";
  row "  %-26s %-10s %-10s@." "instance" "expected" "measured";
  let run name solver expected =
    let least = Fixpoints.least solver <> None in
    row "  %-26s %-10b %-10b %s@." name expected least (ok (least = expected))
  in
  run "pi_1 on L_5" (Fixpoints.prepare pi1 (db_of (Generate.path 5))) true;
  run "pi_1 on C_4" (Fixpoints.prepare pi1 (db_of (Generate.cycle 4))) false;
  run "pi_1 on C_6" (Fixpoints.prepare pi1 (db_of (Generate.cycle 6))) false;
  run "tc (positive) random"
    (Fixpoints.prepare tc_program (db_of (Generate.random ~seed:7 ~n:4 ~p:0.4)))
    true;
  run "pi_SAT horn" (Sat_db.solver (Cnf.of_list 3 [ [ 1 ]; [ -1; 2 ] ])) true;
  run "pi_SAT x1-or-x2" (Sat_db.solver (Cnf.of_list 2 [ [ 1; 2 ] ])) false;
  let brute_ok =
    List.for_all
      (fun g ->
        let ground = Ground.ground pi1 (db_of g) in
        let solver = Fixpoints.prepare pi1 (db_of g) in
        match (Fixpoints_brute.least ground, Fixpoints.least solver) with
        | None, None -> true
        | Some x, Some y -> Idb.equal x y
        | _ -> false)
      [ Generate.path 4; Generate.cycle 4; Generate.cycle 5; Generate.star 4 ]
  in
  row "  brute-force agreement on 4 graphs: %s@." (ok brute_ok)

(* --- E6: pi_COL and succinct 3-coloring (Lemma 1, Theorem 4) ---------------- *)

let e6 () =
  section "E6  3-colorability: pi_COL fixpoints and the succinct version";
  row "  %-24s %-14s %-10s@." "graph" "backtracking" "fixpoint";
  List.iter
    (fun (name, g) ->
      let expected = Graph_coloring.is_3colorable g in
      let got = Coloring3.has_fixpoint g in
      row "  %-24s %-14b %-10b %s@." name expected got (ok (expected = got)))
    [
      ("K_3", Generate.complete 3);
      ("K_4", Generate.complete 4);
      ("C_5", Generate.cycle 5);
      ("grid 2x3", Generate.grid 2 3);
      ("random n=6", Generate.random ~seed:21 ~n:6 ~p:0.4);
      ("random n=7", Generate.random ~seed:22 ~n:7 ~p:0.3);
    ];
  row "  succinct (program carries the instance, universe = {0,1}):@.";
  List.iter
    (fun (name, sg) ->
      let expected = Graph_coloring.is_3colorable (Succinct.expand sg) in
      let got = Succinct3col.has_fixpoint (Succinct3col.compile sg) in
      row "  %-24s %-14b %-10b %s@." name expected got (ok (expected = got)))
    [
      ("hypercube n=2", Succinct.hypercube 2);
      ("complete n=2 (K_4)", Succinct.complete 2);
      ("K_4 explicit", Succinct.of_explicit (Generate.complete 4));
    ]

(* --- E7: inflationary semantics is PTIME; stage bound ----------------------- *)

let time f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)

let e7 () =
  section "E7  Inflationary evaluation: polynomial scaling, stage bound";
  row "  %-14s %-8s %-8s %-12s %-12s@." "workload" "tuples" "stages"
    "seminaive(s)" "naive(s)";
  List.iter
    (fun n ->
      let g = Generate.random ~seed:31 ~n ~p:(4.0 /. float_of_int n) in
      let db = db_of g in
      let trace, t_semi =
        time (fun () -> Inflationary.eval_trace ~engine:`Seminaive tc_program db)
      in
      let _, t_naive =
        time (fun () -> Inflationary.eval_trace ~engine:`Naive tc_program db)
      in
      let stages = List.length trace.Saturate.deltas in
      let tuples = Idb.total_cardinal trace.Saturate.result in
      let bound = n * n in
      row "  tc n=%-9d %-8d %-8d %-12.4f %-12.4f %s@." n tuples stages t_semi
        t_naive
        (ok (stages <= bound)))
    [ 10; 20; 40; 80 ];
  let g = Generate.random ~seed:33 ~n:12 ~p:0.25 in
  let db = db_of g in
  let agree =
    Idb.equal
      (Inflationary.eval tc_program db)
      (Naive.least_fixpoint tc_program db)
  in
  row "  inflationary = least fixpoint on positive program: %s@." (ok agree)

(* --- E8: the distance query (Proposition 2) ---------------------------------- *)

let e8 () =
  section "E8  Proposition 2: inflationary vs stratified on the same program";
  row "  %-18s %-12s %-12s %-10s %-10s@." "graph" "infl=BFS" "strat=TCpair"
    "infl size" "strat size";
  List.iter
    (fun (name, g) ->
      let infl = Distance.inflationary g in
      let strat = Distance.stratified g in
      let infl_ok = Relation.equal infl (Distance.reference g) in
      let strat_ok = Relation.equal strat (Distance.reference_stratified g) in
      row "  %-18s %-12b %-12b %-10d %-10d %s@." name infl_ok strat_ok
        (Relation.cardinal infl) (Relation.cardinal strat)
        (ok (infl_ok && strat_ok)))
    [
      ("L_5", Generate.path 5);
      ("L_7", Generate.path 7);
      ("C_5", Generate.cycle 5);
      ("L_3 + C_3", Digraph.disjoint_union (Generate.path 3) (Generate.cycle 3));
      ("random n=6", Generate.random ~seed:41 ~n:6 ~p:0.25);
      ("grid 2x3", Generate.grid 2 3);
    ]

(* --- E9: Proposition 1 --------------------------------------------------------- *)

let e9 () =
  section "E9  Proposition 1: Inflationary DATALOG = existential FO+IFP";
  row "  %-12s %-30s@." "program" "round-trips preserving semantics";
  List.iter
    (fun (name, p) ->
      let agree_all =
        List.for_all
          (fun seed ->
            let g = Generate.random ~seed:(900 + seed) ~n:4 ~p:0.35 in
            let db = db_of g in
            Prop1.agree p db
            &&
            let p' =
              Prop1.program_of_operators_exn (Prop1.operators_of_program p)
            in
            Idb.equal (Inflationary.eval p db) (Inflationary.eval p' db))
          [ 1; 2; 3 ]
      in
      row "  %-12s %-30s@." name (ok agree_all))
    [
      ("tc", tc_program);
      ("pi_1", pi1);
      ("distance", Distance.program);
      ("toggle", Parser.parse_program_exn "t(Z) :- !t(W).");
    ]

(* --- E10: data vs expression complexity shape ------------------------------------ *)

let e10 () =
  section "E10 Data vs expression complexity (grounding blow-up shape)";
  row "  fixed program (pi_SAT), growing data: ground atoms grow \
       polynomially@.";
  row "  %-10s %-12s %-12s %-10s@." "vars" "|universe|" "atoms" "rules";
  List.iter
    (fun vars ->
      let cnf = Sat_workload.random_3cnf ~seed:51 ~vars ~clauses:(2 * vars) in
      let solver = Sat_db.solver cnf in
      let g = Fixpoints.ground solver in
      row "  %-10d %-12d %-12d %-10d@." vars (vars + (2 * vars))
        (Ground.atom_count g) (Ground.rule_count g))
    [ 3; 4; 5; 6; 8 ];
  row "  growing program (succinct 3-coloring), fixed data {0,1}: atoms \
       grow with 4^bits per gate@.";
  row "  %-10s %-12s %-12s %-10s@." "bits" "rules" "atoms" "grules";
  List.iter
    (fun bits ->
      let compiled = Succinct3col.compile (Succinct.hypercube bits) in
      let solver = Succinct3col.solver compiled in
      let g = Fixpoints.ground solver in
      row "  %-10d %-12d %-12d %-10d@." bits
        (List.length compiled.Succinct3col.program.Ast.rules)
        (Ground.atom_count g) (Ground.rule_count g))
    [ 1; 2; 3 ]

(* --- E11: the Section 5 expressiveness hierarchy, empirically ---------------- *)

let e11 () =
  section "E11 Expressiveness hierarchy (Section 5), empirical witnesses";
  (* DATALOG defines only monotone queries; TC is monotone, the distance
     query is not. *)
  let tc_query g =
    Idb.get (Naive.least_fixpoint tc_program (db_of g)) "s"
  in
  let p_tc, v_tc =
    Expressiveness.monotonicity_trials ~seed:5 ~trials:60 ~query:tc_query
  in
  row "  tc under random edge additions:        preserved=%d violated=%d %s@."
    p_tc v_tc (ok (v_tc = 0));
  let p_d, v_d =
    Expressiveness.monotonicity_trials ~seed:11 ~trials:80
      ~query:Distance.inflationary
  in
  row "  distance under random edge additions:  preserved=%d violated=%d %s@."
    p_d v_d (ok (v_d > 0));
  let g, g', quad = Expressiveness.distance_witness () in
  row "  concrete witness: quad in D(G) dropped by adding one edge: %s@."
    (ok
       (Relation.mem quad (Distance.inflationary g)
       && not (Relation.mem quad (Distance.inflationary g'))));
  (* FO queries stabilise in O(1) inflationary stages; the distance
     program does not. *)
  let make_db n = db_of (Generate.path n) in
  let d_stages =
    Expressiveness.stage_counts Distance.program ~make_db [ 3; 5; 7; 9; 11 ]
  in
  let pi1_stages = Expressiveness.stage_counts pi1 ~make_db [ 3; 5; 7; 9; 11 ] in
  row "  inflationary stages on L_n, n = 3,5,7,9,11:@.";
  row "    distance program: %s (unbounded growth — not first-order)@."
    (String.concat ", " (List.map string_of_int d_stages));
  row "    pi_1:             %s (constant — its inflationary value is FO)@."
    (String.concat ", " (List.map string_of_int pi1_stages))

(* --- Extensions beyond the paper --------------------------------------------- *)

let ext () =
  section "EXT Extensions: supported vs stable models, kernels, magic sets, PFP";
  (* Supported models (= the paper's fixpoints) vs stable models. *)
  row "  %-26s %-10s %-8s@." "program / database" "supported" "stable";
  let win = Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." in
  let self = Parser.parse_program_exn "p(X) :- p(X)." in
  List.iter
    (fun (name, p, db) ->
      let solver = Fixpoints.prepare p db in
      row "  %-26s %-10d %-8d@." name (Fixpoints.count solver)
        (Stable.count_stable solver))
    [
      ("win-move / L_4", win, db_of (Generate.path 4));
      ("win-move / 2-cycle", win, db_of (Generate.cycle 2));
      ("p :- p / one constant", self, Relalg.Database.create_strings [ "a" ]);
      ("pi_1 / C_6", pi1, db_of (Generate.cycle 6));
    ];
  (* Kernels. *)
  let kernel_ok =
    List.for_all
      (fun g ->
        Fixpoints.count (Fixpoints.prepare pi1 (db_of g))
        = Kernel.count (Digraph.reverse g))
      [ Generate.path 5; Generate.cycle 5; Generate.cycle 6; Generate.star 4 ]
  in
  row "  pi_1 fixpoints = kernels of the reversed graph (4 graphs): %s@."
    (ok kernel_ok);
  (* Magic sets. *)
  let g = Generate.path 40 in
  let db = db_of g in
  let query = Ast.atom "s" [ Ast.Const (Digraph.vertex_symbol 35); Ast.Var "Y" ] in
  let answers, t_magic = time (fun () -> Query.answer_exn tc_program db ~query) in
  let full, t_full = time (fun () -> Naive.least_fixpoint tc_program db) in
  let selected =
    Relation.select_eq 0 (Digraph.vertex_symbol 35) (Idb.get full "s")
  in
  row
    "  magic sets on tc, query s(v35, Y) over L_40: %d answers, %.4fs vs \
     full %.4fs %s@."
    (Relation.cardinal answers) t_magic t_full
    (ok (Relation.equal answers selected));
  (* Partial vs inflationary fixpoint on the toggle operator. *)
  (* phi(x, S) = exists z. not S(z): the toggle as an FO operator. *)
  let toggle_op =
    {
      Ifp.pred = "s";
      vars = [ "V1" ];
      body = Fo.Exists ("z", Fo.Not (Fo.Atom ("s", [ Fo.Var "z" ])));
    }
  in
  let db2 = Relalg.Database.create_strings [ "a"; "b" ] in
  row "  toggle operator: PFP %s, IFP |S| = %d %s@."
    (match Ifp.partial_fixpoint db2 toggle_op with
    | None -> "undefined (oscillates)"
    | Some _ -> "defined")
    (Relation.cardinal (Ifp.inflationary_fixpoint db2 toggle_op))
    (ok (Ifp.partial_fixpoint db2 toggle_op = None))

let tables () =
  Format.printf
    "Experiment tables (paper claim vs measured) — see EXPERIMENTS.md@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  ext ();
  Format.printf "@."

(* --- Part 2: Bechamel micro-benchmarks ------------------------------------------- *)

open Bechamel
open Toolkit

let stage = Staged.stage

let micro_tests () =
  let c8 = db_of (Generate.cycle 8) in
  let rnd30 = db_of (Generate.random ~seed:61 ~n:30 ~p:0.12) in
  let rnd60 = db_of (Generate.random ~seed:62 ~n:60 ~p:0.06) in
  let path8 = Generate.path 8 in
  let cnf_small = Sat_workload.random_3cnf ~seed:63 ~vars:6 ~clauses:20 in
  let cnf_solver = Sat_workload.forced_sat ~seed:64 ~vars:60 ~clauses:250 ~k:3 in
  let pigeon = Sat_workload.pigeonhole 6 in
  let pi1_c8_ground = Ground.ground pi1 c8 in
  let eval_group =
    Test.make_grouped ~name:"e7_eval"
      [
        Test.make ~name:"tc_seminaive_n30"
          (stage (fun () -> Inflationary.eval ~engine:`Seminaive tc_program rnd30));
        Test.make ~name:"tc_naive_n30"
          (stage (fun () -> Inflationary.eval ~engine:`Naive tc_program rnd30));
        Test.make ~name:"tc_seminaive_n60"
          (stage (fun () -> Inflationary.eval ~engine:`Seminaive tc_program rnd60));
        Test.make ~name:"pi1_inflationary_n60"
          (stage (fun () -> Inflationary.eval pi1 rnd60));
      ]
  in
  let distance_group =
    Test.make_grouped ~name:"e8_distance"
      [
        Test.make ~name:"inflationary_path8"
          (stage (fun () -> Distance.inflationary path8));
        Test.make ~name:"stratified_path8"
          (stage (fun () -> Distance.stratified path8));
        Test.make ~name:"bfs_reference_path8"
          (stage (fun () -> Distance.reference path8));
      ]
  in
  let fixpoint_group =
    Test.make_grouped ~name:"e1_e2_fixpoint_search"
      [
        Test.make ~name:"pi1_c8_sat_census"
          (stage (fun () -> Fixpoints.count (Fixpoints.prepare pi1 c8)));
        Test.make ~name:"pi1_c8_brute_census"
          (stage (fun () -> Fixpoints_brute.count pi1_c8_ground));
        Test.make ~name:"pi_sat_exists_6v20c"
          (stage (fun () -> Fixpoints.exists (Sat_db.solver cnf_small)));
        Test.make ~name:"pi_sat_ground_6v20c"
          (stage (fun () ->
               Ground.ground Sat_db.program (Sat_db.database_of_cnf cnf_small)));
      ]
  in
  let sat_group =
    Test.make_grouped ~name:"sat_solver"
      [
        Test.make ~name:"cdcl_forced_60v250c"
          (stage (fun () -> Sat_solver.is_satisfiable cnf_solver));
        Test.make ~name:"cdcl_pigeonhole_6"
          (stage (fun () -> Sat_solver.is_satisfiable pigeon));
      ]
  in
  let stable_group =
    let win = Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." in
    let gdb = db_of (Generate.random ~seed:68 ~n:7 ~p:0.3) in
    Test.make_grouped ~name:"extensions_stable"
      [
        Test.make ~name:"supported_census_n7"
          (stage (fun () -> Fixpoints.count (Fixpoints.prepare win gdb)));
        Test.make ~name:"stable_census_n7"
          (stage (fun () -> Stable.count_stable (Fixpoints.prepare win gdb)));
        Test.make ~name:"wellfounded_n7"
          (stage (fun () -> Wellfounded.eval win gdb));
      ]
  in
  let theta_group =
    Test.make_grouped ~name:"theta_operator"
      [
        Test.make ~name:"theta_pi1_c8"
          (stage (fun () -> Theta.apply pi1 c8 (Idb.of_program pi1)));
        Test.make ~name:"ground_apply_pi1_c8"
          (stage (fun () -> Ground.apply pi1_c8_ground (Idb.of_program pi1)));
      ]
  in
  let indexing_group =
    (* Ablation: one full application of the TC rules against a saturated
       IDB, with and without the per-call hash indexes. *)
    let g = Generate.random ~seed:65 ~n:40 ~p:0.1 in
    let db = db_of g in
    let full = Inflationary.eval tc_program db in
    let resolver = Engine.uniform (Engine.layered db full) in
    let schema =
      match Ast.idb_schema tc_program with Ok s -> s | Error e -> failwith e
    in
    let universe = Database.universe db in
    let apply indexing () =
      Engine.eval_rules ~indexing ~universe ~resolver ~schema
        tc_program.Ast.rules
    in
    Test.make_grouped ~name:"ablation_indexing"
      [
        Test.make ~name:"theta_tc_n40_cached" (stage (apply `Cached));
        Test.make ~name:"theta_tc_n40_percall" (stage (apply `Percall));
        Test.make ~name:"theta_tc_n40_scan" (stage (apply `Scan));
      ]
  in
  let magic_group =
    (* Ablation: goal-directed vs full bottom-up on a selective query over
       two disconnected components (the magic rewrite only explores one). *)
    let g = Generate.path 60 in
    let db = db_of g in
    let source = 55 in
    let query =
      Ast.atom "s" [ Ast.Const (Digraph.vertex_symbol source); Ast.Var "Y" ]
    in
    Test.make_grouped ~name:"ablation_magic"
      [
        Test.make ~name:"magic_tc_v55_path60"
          (stage (fun () -> Query.answer_exn tc_program db ~query));
        Test.make ~name:"full_tc_then_select_path60"
          (stage (fun () ->
               let full = Naive.least_fixpoint tc_program db in
               Relation.select_eq 0
                 (Digraph.vertex_symbol source)
                 (Idb.get full "s")));
      ]
  in
  Test.make_grouped ~name:"negdl"
    [
      eval_group;
      distance_group;
      fixpoint_group;
      sat_group;
      theta_group;
      indexing_group;
      magic_group;
      stable_group;
    ]

let run_micro () =
  Format.printf "Micro-benchmarks (Bechamel; OLS time-per-run estimates)@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> x
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Format.printf "  %-50s (no estimate)@." name
      else if ns > 1e9 then Format.printf "  %-50s %10.3f s@." name (ns /. 1e9)
      else if ns > 1e6 then Format.printf "  %-50s %10.3f ms@." name (ns /. 1e6)
      else if ns > 1e3 then Format.printf "  %-50s %10.3f us@." name (ns /. 1e3)
      else Format.printf "  %-50s %10.0f ns@." name ns)
    rows

(* --- Part 3: evaluation-engine benchmark (BENCH_eval.json) ----------------- *)

let wall f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let best_of repeats f =
  let result = ref None in
  let best = ref infinity in
  for _ = 1 to repeats do
    let r, t = wall f in
    result := Some r;
    if t < !best then best := t
  done;
  (Option.get !result, !best)

(* k vertex-disjoint transitive closures: s_i over its own edge relation
   e_i.  The 2k rules touch pairwise-disjoint predicates, so every rule
   application of an iteration is independent — the best case for the
   parallel engine's fan-out. *)
let disjoint_tc_workload ~copies ~n ~p =
  let rules =
    List.init copies (fun i ->
        Printf.sprintf
          "s%d(X, Y) :- e%d(X, Y). s%d(X, Y) :- e%d(X, Z), s%d(Z, Y)." i i i
          i i)
    |> String.concat "\n"
  in
  let program = Parser.parse_program_exn rules in
  let db =
    List.init copies (fun i ->
        let g = Generate.random ~seed:(80 + i) ~n ~p in
        Digraph.to_database
          ~universe_prefix:(Printf.sprintf "c%dv" i)
          ~pred:(Printf.sprintf "e%d" i)
          g)
    |> List.fold_left Database.merge (Database.create ~universe:[])
  in
  (program, db)

let eval_bench () =
  Format.printf
    "Evaluation-engine benchmark (best-of-k wall times) -> BENCH_eval.json@.";
  let results = ref [] in
  let record name ~runs seconds =
    results := (name, runs, seconds) :: !results;
    Format.printf "  %-36s %10.2f ms@." name (seconds *. 1e3)
  in
  (* Indexing ablation 1: semi-naive TC on a dense 200-node random digraph
     (np = 4).  Few iterations, large deltas: the join output dominates, so
     all index strategies that avoid full scans are close. *)
  let tc_db = db_of (Generate.random ~seed:79 ~n:200 ~p:0.02) in
  let tc indexing () =
    Inflationary.eval ~engine:`Seminaive ~indexing tc_program tc_db
  in
  let r_cached, t_cached = best_of 5 (tc `Cached) in
  record "tc200_dense_seminaive_cached" ~runs:5 t_cached;
  let r_percall, t_percall = best_of 5 (tc `Percall) in
  record "tc200_dense_seminaive_percall" ~runs:5 t_percall;
  let r_scan, t_scan = best_of 2 (tc `Scan) in
  record "tc200_dense_seminaive_scan" ~runs:2 t_scan;
  let indexing_agree = Idb.equal r_cached r_percall && Idb.equal r_cached r_scan in
  (* Indexing ablation 2: semi-naive TC on a long-diameter graph with a
     large stable edge relation — an 80-vertex path (80 iterations) plus
     700 disjoint extra edges that fatten [e] without deepening the
     closure.  Here the per-application cost of rebuilding the edge index
     dominates the join work, which is exactly what the cached persistent
     index eliminates: it is built once and reused by all ~80 iterations.
     (On the dense digraph above the join output dominates instead, so
     cached and per-call indexing tie there.) *)
  let sparse_db =
    db_of
      (Digraph.disjoint_union (Generate.path 80)
         (Generate.disjoint_copies 700 (Generate.path 2)))
  in
  let sparse_reps = 20 in
  let tc_sparse indexing () =
    for _ = 2 to sparse_reps do
      ignore (Inflationary.eval ~engine:`Seminaive ~indexing tc_program sparse_db)
    done;
    Inflationary.eval ~engine:`Seminaive ~indexing tc_program sparse_db
  in
  let rs_cached, ts_cached = best_of 3 (tc_sparse `Cached) in
  record "tc_path80_wide_cached" ~runs:3 (ts_cached /. float_of_int sparse_reps);
  let rs_percall, ts_percall = best_of 3 (tc_sparse `Percall) in
  record "tc_path80_wide_percall" ~runs:3 (ts_percall /. float_of_int sparse_reps);
  let sparse_agree = Idb.equal rs_cached rs_percall in
  (* Parallel fan-out: 4 disjoint transitive closures, 8 independent rules. *)
  let par_program, par_db = disjoint_tc_workload ~copies:4 ~n:140 ~p:0.028 in
  let fan engine () = Inflationary.eval ~engine par_program par_db in
  let r_seq, t_seq = best_of 5 (fan `Seminaive) in
  record "tc4x140_seminaive" ~runs:5 t_seq;
  let r_par, t_par = best_of 5 (fan `Parallel) in
  record "tc4x140_parallel" ~runs:5 t_par;
  let parallel_agree = Idb.equal r_seq r_par in
  let speedup_idx = t_percall /. t_cached in
  let speedup_sparse = ts_percall /. ts_cached in
  let speedup_scan = t_scan /. t_cached in
  let speedup_par = t_seq /. t_par in
  Format.printf "  cached vs percall (dense):  %.2fx@." speedup_idx;
  Format.printf "  cached vs percall (path+wide): %.2fx@." speedup_sparse;
  Format.printf "  cached vs scan (dense):     %.2fx@." speedup_scan;
  Format.printf "  parallel vs seminaive:      %.2fx (%d worker domains)@."
    speedup_par
    (Domain_pool.size (Domain_pool.default ()));
  Format.printf "  results agree: indexing %s, sparse %s, parallel %s@."
    (ok indexing_agree) (ok sparse_agree) (ok parallel_agree);
  let oc = open_out "BENCH_eval.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"grain\": %S,\n" (Engine.grain_to_string (Engine.default_grain ()));
  out "  \"benchmarks\": [\n";
  let entries = List.rev !results in
  List.iteri
    (fun i (name, runs, seconds) ->
      out "    {\"name\": %S, \"ns_per_op\": %.0f, \"runs\": %d}%s\n" name
        (seconds *. 1e9) runs
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n";
  out "  \"speedups\": {\n";
  out "    \"cached_vs_percall_dense\": %.3f,\n" speedup_idx;
  out "    \"cached_vs_percall_iterheavy\": %.3f,\n" speedup_sparse;
  out "    \"cached_vs_scan_dense\": %.3f,\n" speedup_scan;
  out "    \"parallel_vs_seminaive\": %.3f\n" speedup_par;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"indexing_modes_agree\": %b,\n" (indexing_agree && sparse_agree);
  out "    \"parallel_matches_sequential\": %b\n" parallel_agree;
  out "  },\n";
  out "  \"worker_domains\": %d\n" (Domain_pool.size (Domain_pool.default ()));
  out "}\n";
  close_out oc

(* --- Part 4: storage-backend benchmark (BENCH_relalg.json) ------------------ *)

let with_storage storage f =
  let saved = Relation.default_storage () in
  Relation.set_default_storage storage;
  Fun.protect ~finally:(fun () -> Relation.set_default_storage saved) f

let storage_name = function `Hashed -> "hashed" | `Treeset -> "treeset"

let indexing_name = function
  | `Cached -> "cached"
  | `Percall -> "percall"
  | `Scan -> "scan"

(* A fingerprint of the E1-E8 experiment drivers: every count a relation
   backend could corrupt, as (name, integer) pairs.  Computed once per
   backend inside {!with_storage}; the benchmark exits nonzero if the
   backends disagree on any entry. *)
let parity_fingerprint () =
  let entries = ref [] in
  let add name v = entries := (name, v) :: !entries in
  let bit name b = add name (if b then 1 else 0) in
  (* E1: the Section 2 fixpoint census. *)
  List.iter
    (fun (name, g) ->
      add ("e1_census_" ^ name)
        (Fixpoints.count (Fixpoints.prepare pi1 (db_of g))))
    [
      ("C4", Generate.cycle 4);
      ("C5", Generate.cycle 5);
      ("C6", Generate.cycle 6);
      ("L5", Generate.path 5);
      ("2xC4", Generate.disjoint_copies 2 (Generate.cycle 4));
    ];
  (* E2: pi_SAT model/fixpoint counts. *)
  List.iter
    (fun seed ->
      let cnf = Sat_workload.random_3cnf ~seed ~vars:5 ~clauses:(10 + (2 * seed)) in
      add
        (Printf.sprintf "e2_pisat_seed%d" seed)
        (Fixpoints.count (Sat_db.solver cnf)))
    [ 1; 2; 3 ];
  (* E3: the Fagin-compiled kernel decider. *)
  List.iter
    (fun (name, g) ->
      bit ("e3_fagin_" ^ name)
        (Fagin.has_fixpoint (Lazy.force kernel_compiled) (db_of g)))
    [ ("L3", Generate.path 3); ("C3", Generate.cycle 3); ("C4", Generate.cycle 4) ];
  (* E4: unique fixpoints. *)
  List.iter
    (fun k ->
      bit
        (Printf.sprintf "e4_unique_k%d" k)
        (Fixpoints.has_unique (Sat_db.solver (Sat_workload.exactly_k_models 3 k))))
    [ 0; 1; 2 ];
  (* E5: least-fixpoint existence. *)
  List.iter
    (fun (name, solver) -> bit ("e5_least_" ^ name) (Fixpoints.least solver <> None))
    [
      ("pi1_L5", Fixpoints.prepare pi1 (db_of (Generate.path 5)));
      ("pi1_C4", Fixpoints.prepare pi1 (db_of (Generate.cycle 4)));
      ("sat_or", Sat_db.solver (Cnf.of_list 2 [ [ 1; 2 ] ]));
    ];
  (* E6: pi_COL 3-colorability. *)
  List.iter
    (fun (name, g) -> bit ("e6_3col_" ^ name) (Coloring3.has_fixpoint g))
    [
      ("K3", Generate.complete 3);
      ("C5", Generate.cycle 5);
      ("grid23", Generate.grid 2 3);
    ];
  (* E7: inflationary TC sizes and stage counts. *)
  let trace =
    Inflationary.eval_trace tc_program
      (db_of (Generate.random ~seed:31 ~n:30 ~p:0.13))
  in
  add "e7_tc30_tuples" (Idb.total_cardinal trace.Saturate.result);
  add "e7_tc30_stages" (List.length trace.Saturate.deltas);
  (* E8: the distance query, inflationary vs stratified. *)
  List.iter
    (fun (name, g) ->
      add ("e8_dist_infl_" ^ name) (Relation.cardinal (Distance.inflationary g));
      add ("e8_dist_strat_" ^ name) (Relation.cardinal (Distance.stratified g)))
    [ ("L7", Generate.path 7); ("rnd6", Generate.random ~seed:41 ~n:6 ~p:0.25) ];
  (* The three-valued side, for good measure. *)
  let m = Wellfounded.eval pi1 (db_of (Generate.cycle 5)) in
  add "wf_pi1_c5_true" (Idb.total_cardinal m.Wellfounded.true_facts);
  add "wf_pi1_c5_possible" (Idb.total_cardinal m.Wellfounded.possible);
  List.rev !entries

let storage_bench ~quick () =
  Format.printf
    "Storage-backend benchmark (hashed vs treeset%s) -> BENCH_relalg.json@."
    (if quick then ", quick mode" else "");
  let storages = [ `Hashed; `Treeset ] in
  let indexings = [ `Cached; `Percall ] in
  (* Workload 1 — iteration-heavy TC: the transitive closure of the cycle
     C_n takes n semi-naive stages and saturates at n^2 tuples, so every
     stage unions a delta into an ever-larger closure and deduplicates
     candidates against it.  This is the regime the packed backend targets:
     membership is a precomputed-hash probe and union merges integer-set
     structure, where the tree backend re-walks tuple arrays on every
     comparison. *)
  let tc_n = if quick then 100 else 140 in
  let best_reps = if quick then 2 else 4 in
  let tc_cell storage indexing =
    with_storage storage (fun () ->
        let db = db_of (Generate.cycle tc_n) in
        let run () =
          Inflationary.eval ~engine:`Seminaive ~indexing tc_program db
        in
        let r, t = best_of best_reps run in
        (Idb.total_cardinal r, t))
  in
  let matrix =
    List.concat_map
      (fun storage ->
        List.map
          (fun indexing ->
            let tuples, seconds = tc_cell storage indexing in
            (storage, indexing, tuples, seconds))
          indexings)
      storages
  in
  Format.printf "  %-34s %10s %10s@." "tc_iterheavy (storage x indexing)" "ms"
    "tuples";
  List.iter
    (fun (storage, indexing, tuples, seconds) ->
      Format.printf "  %-34s %10.2f %10d@."
        (Printf.sprintf "tc_%s_%s" (storage_name storage)
           (indexing_name indexing))
        (seconds *. 1e3) tuples)
    matrix;
  let cell storage indexing =
    let _, _, tuples, seconds =
      List.find (fun (s, i, _, _) -> s = storage && i = indexing) matrix
    in
    (tuples, seconds)
  in
  let tc_counts_agree =
    match matrix with
    | (_, _, t0, _) :: rest -> List.for_all (fun (_, _, t, _) -> t = t0) rest
    | [] -> false
  in
  (* Workload 2 — the E1 cycle census at scale: ground pi_1 on the cycle
     C_n, encode Theta(S)=S and count the fixpoints (2 for even cycles).
     Grounding dominates, and its inner loop is one membership probe per
     candidate binding against the n-edge relation — the storage-sensitive
     path the packed backend accelerates. *)
  let census_n = if quick then 400 else 500 in
  let census storage =
    with_storage storage (fun () ->
        let db = db_of (Generate.cycle census_n) in
        best_of best_reps (fun () ->
            Fixpoints.count (Fixpoints.prepare pi1 db)))
  in
  let census_hashed, t_census_hashed = census `Hashed in
  let census_treeset, t_census_treeset = census `Treeset in
  Format.printf "  %-34s %10.2f %10d@."
    (Printf.sprintf "census_C%d_hashed" census_n)
    (t_census_hashed *. 1e3) census_hashed;
  Format.printf "  %-34s %10.2f %10d@."
    (Printf.sprintf "census_C%d_treeset" census_n)
    (t_census_treeset *. 1e3) census_treeset;
  (* E1-E8 parity: both backends must reproduce every experiment count. *)
  let fp_hashed = with_storage `Hashed parity_fingerprint in
  let fp_treeset = with_storage `Treeset parity_fingerprint in
  let divergences =
    List.filter_map
      (fun ((name, h), (name', t)) ->
        assert (name = name');
        if h = t then None else Some (name, h, t))
      (List.combine fp_hashed fp_treeset)
  in
  List.iter
    (fun (name, h, t) ->
      Format.printf "  DIVERGENCE %s: hashed=%d treeset=%d@." name h t)
    divergences;
  let parity_ok = divergences = [] && census_hashed = census_treeset in
  let _, t_hc = cell `Hashed `Cached in
  let _, t_hp = cell `Hashed `Percall in
  let _, t_tc = cell `Treeset `Cached in
  let _, t_tp = cell `Treeset `Percall in
  let speedup_tc = t_tc /. t_hc in
  let speedup_tc_percall = t_tp /. t_hp in
  let speedup_census = t_census_treeset /. t_census_hashed in
  Format.printf "  hashed vs treeset (tc, cached):  %.2fx@." speedup_tc;
  Format.printf "  hashed vs treeset (tc, percall): %.2fx@." speedup_tc_percall;
  Format.printf "  hashed vs treeset (census):      %.2fx@." speedup_census;
  Format.printf
    "  parity: E1-E8 fingerprints (%d entries) %s, tc models %s@."
    (List.length fp_hashed) (ok parity_ok) (ok tc_counts_agree);
  let oc = open_out "BENCH_relalg.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"grain\": %S,\n" (Engine.grain_to_string (Engine.default_grain ()));
  out "  \"matrix\": [\n";
  List.iteri
    (fun i (storage, indexing, tuples, seconds) ->
      out
        "    {\"workload\": \"tc_iterheavy\", \"storage\": %S, \"indexing\": \
         %S, \"ns_per_op\": %.0f, \"tuples\": %d}%s\n"
        (storage_name storage) (indexing_name indexing)
        (seconds *. 1e9) tuples
        (if i = List.length matrix - 1 then "" else ","))
    matrix;
  out "  ],\n";
  out "  \"census\": [\n";
  out
    "    {\"workload\": \"e1_census_C%d\", \"storage\": \"hashed\", \
     \"ns_per_op\": %.0f, \"fixpoints\": %d},\n"
    census_n (t_census_hashed *. 1e9) census_hashed;
  out
    "    {\"workload\": \"e1_census_C%d\", \"storage\": \"treeset\", \
     \"ns_per_op\": %.0f, \"fixpoints\": %d}\n"
    census_n (t_census_treeset *. 1e9) census_treeset;
  out "  ],\n";
  out "  \"speedups\": {\n";
  out "    \"hashed_vs_treeset_tc_cached\": %.3f,\n" speedup_tc;
  out "    \"hashed_vs_treeset_tc_percall\": %.3f,\n" speedup_tc_percall;
  out "    \"hashed_vs_treeset_census\": %.3f\n" speedup_census;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"e1_e8_fingerprints_match\": %b,\n" (divergences = []);
  out "    \"census_counts_match\": %b,\n" (census_hashed = census_treeset);
  out "    \"tc_models_agree\": %b\n" tc_counts_agree;
  out "  }\n";
  out "}\n";
  close_out oc;
  if not (parity_ok && tc_counts_agree) then begin
    Format.printf "  backend divergence detected — failing@.";
    exit 1
  end

(* --- Part 5: parallel SAT search benchmark (BENCH_sat.json) ----------------- *)

let satpar_bench ~quick () =
  let n_workers = if quick then 2 else 4 in
  Format.printf
    "Parallel SAT search benchmark (portfolio n=%d + component census%s) -> \
     BENCH_sat.json@."
    n_workers
    (if quick then ", quick mode" else "");
  (* Workload 1 — a band of random 3-CNF just below the satisfiability
     threshold (ratio 3.8): the heavy-tailed regime, where the stock
     heuristic occasionally stalls for seconds on an instance another
     phase/restart profile dispatches in milliseconds.  Racing diversified
     workers — even time-sliced on one core — buys back those stalls; the
     band aggregates over fixed seeds so the tail events are
     reproducible. *)
  let vars = if quick then 150 else 300 in
  let clauses = int_of_float (3.8 *. float_of_int vars) in
  let seeds = List.init (if quick then 8 else 16) (fun i -> 1000 + i) in
  let status = function Sat_solver.Sat _ -> "sat" | Sat_solver.Unsat -> "unsat" in
  let reps = if quick then 1 else 2 in
  let band =
    List.map
      (fun seed ->
        let cnf = Sat_workload.random_3cnf ~seed ~vars ~clauses in
        let r_seq, t_seq =
          best_of reps (fun () -> Sat_solver.solve ~mode:`Sequential cnf)
        in
        let r_par, t_par =
          best_of reps (fun () ->
              Sat_solver.solve ~mode:(`Portfolio n_workers) cnf)
        in
        (seed, status r_seq, t_seq, status r_par, t_par))
      seeds
  in
  Format.printf "  %-26s %6s %10s %10s %8s@." "random3sat" "answer" "seq ms"
    "par ms" "speedup";
  List.iter
    (fun (seed, s_seq, t_seq, s_par, t_par) ->
      Format.printf "  %-26s %6s %10.2f %10.2f %7.2fx%s@."
        (Printf.sprintf "v%d_c%d_seed%d" vars clauses seed)
        s_seq (t_seq *. 1e3) (t_par *. 1e3) (t_seq /. t_par)
        (if s_seq = s_par then "" else "  DIVERGENCE"))
    band;
  let total f = List.fold_left (fun acc x -> acc +. f x) 0. band in
  let t_seq_total = total (fun (_, _, t, _, _) -> t) in
  let t_par_total = total (fun (_, _, _, _, t) -> t) in
  let sat_speedup = t_seq_total /. t_par_total in
  let sat_parity =
    List.for_all (fun (_, s_seq, _, s_par, _) -> s_seq = s_par) band
  in
  Format.printf "  band total: seq %.2f ms, portfolio %.2f ms, %.2fx@."
    (t_seq_total *. 1e3) (t_par_total *. 1e3) sat_speedup;
  (* Workload 2 — the E1 census on k disjoint C_4's: flat enumeration pays
     one blocking-clause SAT call per fixpoint (2^k of them), the
     component-parallel exact census counts each C_4 once and multiplies. *)
  let ks = if quick then [ 7; 8 ] else [ 8; 9; 10 ] in
  let census =
    List.map
      (fun k ->
        let g = Generate.disjoint_copies k (Generate.cycle 4) in
        let solver = Fixpoints.prepare pi1 (db_of g) in
        let flat, t_flat = best_of reps (fun () -> Fixpoints.count solver) in
        let exact, t_exact =
          best_of reps (fun () ->
              Fixpoints.count_exact ~par:n_workers solver)
        in
        let exact_n =
          match exact with
          | Satlib.Outcome.Exact n -> n
          | Satlib.Outcome.Lower_bound (n, _) -> n
        in
        let exact_is_exact =
          match exact with Satlib.Outcome.Exact _ -> true | _ -> false
        in
        (k, flat, t_flat, exact_n, exact_is_exact, t_exact))
      ks
  in
  Format.printf "  %-26s %8s %10s %10s %8s@." "census kxC4" "count" "flat ms"
    "exact ms" "speedup";
  List.iter
    (fun (k, flat, t_flat, exact_n, exact_is_exact, t_exact) ->
      Format.printf "  %-26s %8d %10.2f %10.2f %7.2fx%s@."
        (Printf.sprintf "%dxC_4" k)
        flat (t_flat *. 1e3) (t_exact *. 1e3) (t_flat /. t_exact)
        (if flat = exact_n && exact_is_exact && flat = 1 lsl k then ""
         else "  DIVERGENCE"))
    census;
  let census_parity =
    List.for_all
      (fun (k, flat, _, exact_n, exact_is_exact, _) ->
        flat = exact_n && exact_is_exact && flat = 1 lsl k)
      census
  in
  let census_speedup =
    match List.rev census with
    | (_, _, t_flat, _, _, t_exact) :: _ -> t_flat /. t_exact
    | [] -> 0.
  in
  Format.printf "  parity: sat band %s, census counts %s@." (ok sat_parity)
    (ok census_parity);
  let oc = open_out "BENCH_sat.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"grain\": %S,\n" (Engine.grain_to_string (Engine.default_grain ()));
  out "  \"portfolio_workers\": %d,\n" n_workers;
  out "  \"random3sat\": [\n";
  List.iteri
    (fun i (seed, s_seq, t_seq, s_par, t_par) ->
      out
        "    {\"workload\": \"random3sat_v%d_c%d\", \"seed\": %d, \"answer\": \
         %S, \"seq_ns\": %.0f, \"portfolio_ns\": %.0f, \"parity\": %b}%s\n"
        vars clauses seed s_seq (t_seq *. 1e9) (t_par *. 1e9) (s_seq = s_par)
        (if i = List.length band - 1 then "" else ","))
    band;
  out "  ],\n";
  out "  \"census\": [\n";
  List.iteri
    (fun i (k, flat, t_flat, exact_n, exact_is_exact, t_exact) ->
      out
        "    {\"workload\": \"census_%dxC4\", \"fixpoints\": %d, \"flat_ns\": \
         %.0f, \"exact_ns\": %.0f, \"parity\": %b}%s\n"
        k flat (t_flat *. 1e9) (t_exact *. 1e9)
        (flat = exact_n && exact_is_exact)
        (if i = List.length census - 1 then "" else ","))
    census;
  out "  ],\n";
  out "  \"speedups\": {\n";
  out "    \"portfolio_vs_sequential_band\": %.3f,\n" sat_speedup;
  out "    \"component_census_vs_flat\": %.3f\n" census_speedup;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"sat_answers_match\": %b,\n" sat_parity;
  out "    \"census_counts_match\": %b\n" census_parity;
  out "  }\n";
  out "}\n";
  close_out oc;
  if not (sat_parity && census_parity) then begin
    Format.printf "  answer divergence detected — failing@.";
    exit 1
  end

(* --- Part 6: planner ablation benchmark (BENCH_plan.json) -------------------- *)

let with_planner planner f =
  let saved = Plan.default_planner () in
  Plan.set_default_planner planner;
  Fun.protect ~finally:(fun () -> Plan.set_default_planner saved) f

let planner_name = Plan.planner_to_string

(* Satellite check: the plan executor's hot loop must not allocate per row
   (return-value matching, no exceptions, plain-array environment).  A warm
   second execution of a compiled plan — indexes already memoized — is
   measured in minor-heap words per emitted row; anything beyond the
   per-execution setup (scratch tuples, resolved relations) trips the
   bound. *)
let executor_words_per_row () =
  let db = db_of (Generate.cycle 64) in
  let full = Inflationary.eval tc_program db in
  let resolver = Engine.uniform (Engine.layered db full) in
  let universe = Database.universe db in
  let rule = List.nth tc_program.Ast.rules 1 in
  let plan =
    Engine.plan_rule ~planner:`Static ~universe_size:(List.length universe)
      ~resolver rule
  in
  let rows = ref 0 in
  let run () =
    Plan.run ~resolver ~universe plan ~on_row:(fun _ -> incr rows)
  in
  run ();
  (* warm: relation indexes built and memoized *)
  rows := 0;
  let before = Gc.minor_words () in
  run ();
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int (max 1 !rows)

let with_drift factor f =
  let saved = Plan.drift_factor () in
  Plan.set_drift_factor factor;
  Fun.protect ~finally:(fun () -> Plan.set_drift_factor saved) f

let plan_bench ~quick () =
  Format.printf
    "Planner ablation benchmark (static vs greedy vs scan vs adaptive%s) -> \
     BENCH_plan.json@."
    (if quick then ", quick mode" else "");
  let planners = [ `Static; `Greedy; `Scan; `Adaptive ] in
  let best_reps = if quick then 2 else 4 in
  (* Workload 1 — the Theta-application loop itself, on E1's pi_1: the
     operator every semantics in the paper iterates, applied over and over
     at its inflationary valuation on C_8 with a shared plan cache.  This
     is the regime of Theta.iterate's orbit detection and the well-founded
     alternating fixpoint's inner reducts — thousands of applications over
     a tiny valuation — and it isolates exactly what the plan layer
     changed: per application, static fetches a cached plan where greedy
     replans from fresh cardinalities. *)
  let theta_db = db_of (Generate.cycle 8) in
  (* A true fixpoint valuation (one of C_8's kernels), so each application
     re-derives exactly S. *)
  let theta_fp =
    match Fixpoints.find (Fixpoints.prepare pi1 theta_db) with
    | Some fp -> fp
    | None -> Inflationary.eval pi1 theta_db
  in
  let theta_iters = if quick then 20000 else 50000 in
  let theta_cell planner =
    with_planner planner (fun () ->
        let cache = Plan_cache.create () in
        ignore (Theta.apply ~cache pi1 theta_db theta_fp);
        let run () =
          for _ = 2 to theta_iters do
            ignore (Theta.apply ~cache pi1 theta_db theta_fp)
          done;
          Theta.apply ~cache pi1 theta_db theta_fp
        in
        let r, t = best_of best_reps run in
        (Idb.total_cardinal r, t /. float_of_int theta_iters))
  in
  (* Workload 2 — application-heavy TC (the E7 family, tilted to where
     replanning hurts): k vertex-disjoint transitive closures over small
     cycles.  Every semi-naive stage runs one delta application per copy,
     each joining a handful of tuples — so the greedy policy pays a
     replan per copy per stage against joins too small to ever reorder
     differently.  Static planning compiles each (rule, variant) once and
     hits the cache for the rest of the run. *)
  let multi_copies = if quick then 32 else 48 in
  let multi_cycle = 8 in
  let multi_reps = if quick then 4 else 6 in
  let multi_program =
    List.init multi_copies (fun i ->
        Printf.sprintf
          "s%d(X, Y) :- e%d(X, Y). s%d(X, Y) :- e%d(X, Z), s%d(Z, Y)." i i i
          i i)
    |> String.concat "\n" |> Parser.parse_program_exn
  in
  let multi_db =
    List.init multi_copies (fun i ->
        Digraph.to_database
          ~universe_prefix:(Printf.sprintf "c%dv" i)
          ~pred:(Printf.sprintf "e%d" i)
          (Generate.cycle multi_cycle))
    |> List.fold_left Database.merge (Database.create ~universe:[])
  in
  let tc_cell planner =
    with_planner planner (fun () ->
        let run () =
          for _ = 2 to multi_reps do
            ignore (Inflationary.eval ~engine:`Seminaive multi_program multi_db)
          done;
          Inflationary.eval ~engine:`Seminaive multi_program multi_db
        in
        let r, t = best_of best_reps run in
        (Idb.total_cardinal r, t /. float_of_int multi_reps))
  in
  (* Workload 3 — the E8 distance program on L_n: six rules, three
     delta-specialized variants per stage, ~n stages; the multi-rule body
     mix (negation, universe enumeration) makes replanning costlier than
     on TC while the per-stage deltas stay small. *)
  let dist_n = if quick then 10 else 13 in
  let dist_reps = if quick then 3 else 4 in
  let dist_g = Generate.path dist_n in
  let dist_cell planner =
    with_planner planner (fun () ->
        let run () =
          for _ = 2 to dist_reps do
            ignore (Distance.inflationary dist_g)
          done;
          Distance.inflationary dist_g
        in
        let r, t = best_of best_reps run in
        (Relation.cardinal r, t /. float_of_int dist_reps))
  in
  (* Workload 4 — dense TC (join-output-dominated, the E7 dense point):
     here execution dwarfs planning, so static and greedy should tie and
     only scan (no index probes) falls off a cliff.  Kept as the honest
     counterpoint: static planning wins by removing replan overhead, not
     by finding better orders than greedy. *)
  let dense_n = if quick then 90 else 140 in
  let dense_db =
    db_of (Generate.random ~seed:79 ~n:dense_n ~p:(4.0 /. float_of_int dense_n))
  in
  let dense_cell planner =
    with_planner planner (fun () ->
        let run () = Inflationary.eval ~engine:`Seminaive tc_program dense_db in
        let r, t = best_of best_reps run in
        (Idb.total_cardinal r, t))
  in
  let workloads =
    [
      ("theta_pi1_apply", theta_cell);
      ("tc_multi_iterheavy", tc_cell);
      ("distance_path", dist_cell);
      ("tc_dense", dense_cell);
    ]
  in
  let matrix =
    List.concat_map
      (fun (wname, cell) ->
        List.map
          (fun planner ->
            let tuples, seconds = cell planner in
            (wname, planner, tuples, seconds))
          planners)
      workloads
  in
  Format.printf "  %-34s %10s %10s@." "workload x planner" "ms" "tuples";
  List.iter
    (fun (wname, planner, tuples, seconds) ->
      Format.printf "  %-34s %10.2f %10d@."
        (Printf.sprintf "%s_%s" wname (planner_name planner))
        (seconds *. 1e3) tuples)
    matrix;
  let cell wname planner =
    let _, _, tuples, seconds =
      List.find (fun (w, p, _, _) -> w = wname && p = planner) matrix
    in
    (tuples, seconds)
  in
  let results_agree =
    List.for_all
      (fun (wname, _) ->
        let t0, _ = cell wname `Static in
        List.for_all (fun p -> fst (cell wname p) = t0) planners)
      workloads
  in
  let speedup wname a b = snd (cell wname b) /. snd (cell wname a) in
  let sg_theta = speedup "theta_pi1_apply" `Static `Greedy in
  let sg_tc = speedup "tc_multi_iterheavy" `Static `Greedy in
  let sg_dist = speedup "distance_path" `Static `Greedy in
  let sg_dense = speedup "tc_dense" `Static `Greedy in
  let ss_dense = speedup "tc_dense" `Static `Scan in
  Format.printf "  static vs greedy (theta loop):    %.2fx@." sg_theta;
  Format.printf "  static vs greedy (tc multi):      %.2fx@." sg_tc;
  Format.printf "  static vs greedy (distance):      %.2fx@." sg_dist;
  Format.printf "  static vs greedy (tc dense):      %.2fx@." sg_dense;
  Format.printf "  static vs scan   (tc dense):      %.2fx@." ss_dense;
  (* The adaptive gate: no single static choice wins every workload (scan
     beats static on the many-tiny-joins TC, static beats scan 6x+ on the
     dense one), so the feedback planner must land within 10% of whichever
     static choice is best, on every workload — and strictly beat static
     where scan wins today. *)
  let adaptive_margins =
    List.map
      (fun (wname, _) ->
        let best =
          List.fold_left
            (fun acc p -> Float.min acc (snd (cell wname p)))
            infinity
            [ `Static; `Greedy; `Scan ]
        in
        (wname, snd (cell wname `Adaptive) /. best))
      workloads
  in
  List.iter
    (fun (wname, margin) ->
      Format.printf "  adaptive vs best static choice (%s): %.2fx@." wname
        margin)
    adaptive_margins;
  let adaptive_within_10pct =
    List.for_all (fun (_, margin) -> margin <= 1.10) adaptive_margins
  in
  let adaptive_beats_static_tc_multi =
    snd (cell "tc_multi_iterheavy" `Adaptive)
    < snd (cell "tc_multi_iterheavy" `Static)
  in
  Format.printf "  adaptive within 10%% of best everywhere %s@."
    (ok adaptive_within_10pct);
  Format.printf "  adaptive beats static on tc_multi_iterheavy %s@."
    (ok adaptive_beats_static_tc_multi);
  (* Plan-counter telemetry on the iteration-heavy workload: static compiles
     a bounded set of plans — full + delta variants, at most 3 per copy —
     and hits the cache everywhere else; greedy compiles once per rule
     application, so it scales with iterations, not rules. *)
  let counters planner =
    with_planner planner (fun () ->
        let stats = Stats.create () in
        ignore
          (Inflationary.eval ~engine:`Seminaive ~stats multi_program multi_db);
        (stats.Stats.plan.Plan.plan_compiles,
         stats.Stats.plan.Plan.plan_cache_hits))
  in
  let static_compiles, static_hits = counters `Static in
  let greedy_compiles, greedy_hits = counters `Greedy in
  Format.printf
    "  plan compiles on %dx tc C_%d: static %d (%d cache hits), greedy %d \
     (%d)@."
    multi_copies multi_cycle static_compiles static_hits greedy_compiles
    greedy_hits;
  let compile_once_ok =
    static_compiles <= 3 * multi_copies && greedy_compiles > static_compiles
  in
  (* Feedback-loop telemetry on the dense TC, where the growing closure
     moves observed per-step cardinalities furthest from the estimates the
     delta plans were compiled against: the adaptive planner converts the
     blind size-drift recompiles static pays into bounded, informed
     replans (overridden occurrences are exempt from the drift check, so
     total compiles drop), both at the default tolerance and at the
     tightest one. *)
  let adaptive_dense_counters drift =
    with_drift drift (fun () ->
        with_planner `Adaptive (fun () ->
            let stats = Stats.create () in
            ignore
              (Inflationary.eval ~engine:`Seminaive ~stats tc_program dense_db);
            ( stats.Stats.plan.Plan.plan_compiles,
              stats.Stats.plan.Plan.plan_replans )))
  in
  let dense_compiles_default, dense_replans_default =
    adaptive_dense_counters (Plan.drift_factor ())
  in
  let dense_compiles_tight, dense_replans_tight = adaptive_dense_counters 1 in
  Format.printf
    "  adaptive on tc_dense: drift %d -> %d compiles %d replans; drift 1 -> \
     %d compiles %d replans@."
    (Plan.drift_factor ()) dense_compiles_default dense_replans_default
    dense_compiles_tight dense_replans_tight;
  let replans_recorded = dense_replans_default > 0 || dense_replans_tight > 0 in
  Format.printf "  feedback replans engage on tc_dense %s@."
    (ok replans_recorded);
  (* E1-E8 parity: every experiment count must be planner-invariant. *)
  let fps =
    List.map (fun p -> (p, with_planner p parity_fingerprint)) planners
  in
  let fp_static = List.assoc `Static fps in
  let divergences =
    List.concat_map
      (fun (p, fp) ->
        if p = `Static then []
        else
          List.filter_map
            (fun ((name, s), (name', v)) ->
              assert (name = name');
              if s = v then None else Some (planner_name p, name, s, v))
            (List.combine fp_static fp))
      fps
  in
  List.iter
    (fun (pname, name, s, v) ->
      Format.printf "  DIVERGENCE %s under %s: static=%d got=%d@." name pname s
        v)
    divergences;
  let parity_ok = divergences = [] in
  Format.printf "  parity: E1-E8 fingerprints (%d entries x %d planners) %s@."
    (List.length fp_static) (List.length planners) (ok parity_ok);
  let words_per_row = executor_words_per_row () in
  let alloc_ok = words_per_row < 8.0 in
  Format.printf "  executor allocation: %.2f minor words/row (bound 8.0) %s@."
    words_per_row (ok alloc_ok);
  let oc = open_out "BENCH_plan.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"grain\": %S,\n" (Engine.grain_to_string (Engine.default_grain ()));
  out "  \"matrix\": [\n";
  List.iteri
    (fun i (wname, planner, tuples, seconds) ->
      out
        "    {\"workload\": %S, \"planner\": %S, \"ns_per_op\": %.0f, \
         \"tuples\": %d}%s\n"
        wname (planner_name planner) (seconds *. 1e9) tuples
        (if i = List.length matrix - 1 then "" else ","))
    matrix;
  out "  ],\n";
  out "  \"plan_counters\": {\n";
  out "    \"static_compiles\": %d,\n" static_compiles;
  out "    \"static_cache_hits\": %d,\n" static_hits;
  out "    \"greedy_compiles\": %d,\n" greedy_compiles;
  out "    \"greedy_cache_hits\": %d\n" greedy_hits;
  out "  },\n";
  out "  \"adaptive\": {\n";
  out "    \"tc_dense_compiles_default_drift\": %d,\n" dense_compiles_default;
  out "    \"tc_dense_replans_default_drift\": %d,\n" dense_replans_default;
  out "    \"tc_dense_compiles_drift1\": %d,\n" dense_compiles_tight;
  out "    \"tc_dense_replans_drift1\": %d,\n" dense_replans_tight;
  List.iteri
    (fun i (wname, margin) ->
      out "    \"margin_vs_best_%s\": %.3f%s\n" wname margin
        (if i = List.length adaptive_margins - 1 then "" else ","))
    adaptive_margins;
  out "  },\n";
  out "  \"speedups\": {\n";
  out "    \"static_vs_greedy_theta_apply\": %.3f,\n" sg_theta;
  out "    \"static_vs_greedy_tc_iterheavy\": %.3f,\n" sg_tc;
  out "    \"static_vs_greedy_distance\": %.3f,\n" sg_dist;
  out "    \"static_vs_greedy_tc_dense\": %.3f,\n" sg_dense;
  out "    \"static_vs_scan_tc_dense\": %.3f\n" ss_dense;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"e1_e8_fingerprints_match\": %b,\n" parity_ok;
  out "    \"planner_results_agree\": %b,\n" results_agree;
  out "    \"compile_once\": %b,\n" compile_once_ok;
  out "    \"adaptive_within_10pct_of_best\": %b,\n" adaptive_within_10pct;
  out "    \"adaptive_beats_static_tc_multi\": %b,\n"
    adaptive_beats_static_tc_multi;
  out "    \"adaptive_replans_recorded\": %b,\n" replans_recorded;
  out "    \"executor_words_per_row\": %.2f,\n" words_per_row;
  out "    \"executor_allocation_ok\": %b\n" alloc_ok;
  out "  }\n";
  out "}\n";
  close_out oc;
  if
    not
      (parity_ok && results_agree && alloc_ok && compile_once_ok
      && adaptive_within_10pct && adaptive_beats_static_tc_multi
      && replans_recorded)
  then begin
    Format.printf "  planner divergence or adaptive regression — failing@.";
    exit 1
  end

(* --- Part 7: intra-rule parallelism benchmark (BENCH_par.json) ---------------- *)

let with_grain grain f =
  let saved = Engine.default_grain () in
  Engine.set_default_grain grain;
  Fun.protect ~finally:(fun () -> Engine.set_default_grain saved) f

let grain_name = Engine.grain_to_string

(* Model-level parity for the [`Parallel] engine: every semantics built on
   saturation, evaluated under an explicit pool and grain, reduced to
   (name, count) entries.  Compared against the sequential reference and
   across grain settings — the morsel schedule must never change a model. *)
let par_model_fingerprint ~engine ?pool ?grain () =
  let entries = ref [] in
  let add name v = entries := (name, v) :: !entries in
  (* pi_1 (recursion through negation) on cycles and paths. *)
  List.iter
    (fun (name, g) ->
      add ("infl_pi1_" ^ name)
        (Idb.total_cardinal
           (Inflationary.eval ~engine ?pool ?grain pi1 (db_of g))))
    [ ("C8", Generate.cycle 8); ("L9", Generate.path 9) ];
  (* E7-style transitive closure: tuples and stage counts. *)
  let tr =
    Inflationary.eval_trace ~engine ?pool ?grain tc_program
      (db_of (Generate.random ~seed:31 ~n:30 ~p:0.13))
  in
  add "tc30_tuples" (Idb.total_cardinal tr.Saturate.result);
  add "tc30_stages" (List.length tr.Saturate.deltas);
  (* A stratified program with negation over the closure. *)
  let neg_p =
    Parser.parse_program_exn
      "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y). un(X, Y) :- !s(X, Y)."
  in
  let neg_db = db_of (Generate.random ~seed:57 ~n:12 ~p:0.2) in
  add "strat_unreach_tuples"
    (Idb.total_cardinal (Stratified.eval_exn ~engine ?pool ?grain neg_p neg_db));
  (* The three-valued side: the alternating fixpoint re-saturates many
     times, so a scheduling bug would surface here first. *)
  let m =
    Wellfounded.eval ~engine ?pool ?grain pi1 (db_of (Generate.cycle 6))
  in
  add "wf_pi1_c6_true" (Idb.total_cardinal m.Wellfounded.true_facts);
  add "wf_pi1_c6_possible" (Idb.total_cardinal m.Wellfounded.possible);
  List.rev !entries

(* Hidden mode backing the cross-partition parity gate: print the full
   model + E1-E8 fingerprint, one "name value" line per entry.  The store's
   stripe count is fixed once at module initialisation, so the only honest
   way to compare partition layouts is to re-exec this binary under
   different NEGDL_PARTITIONS settings and diff what each process prints. *)
let par_fingerprint_print () =
  List.iter
    (fun (name, v) -> Printf.printf "%s %d\n" name v)
    (par_model_fingerprint ~engine:`Seminaive () @ parity_fingerprint ())

let par_partition_parity ~quick () =
  let counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let saved = Sys.getenv_opt "NEGDL_PARTITIONS" in
  let run p =
    Unix.putenv "NEGDL_PARTITIONS" (string_of_int p);
    let ic =
      Unix.open_process_in
        (Filename.quote Sys.executable_name ^ " par-fingerprint")
    in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> List.rev !lines
    | _ -> []
  in
  let outs = List.map (fun p -> (p, run p)) counts in
  (match saved with
  | Some v -> Unix.putenv "NEGDL_PARTITIONS" v
  | None ->
      (* No way to unset from here; pin the parent's resolved value so any
         further child sees the layout this process actually ran. *)
      Unix.putenv "NEGDL_PARTITIONS" (string_of_int (Relalg.Store.partitions ())));
  match outs with
  | [] | [ _ ] -> (counts, true)
  | (p0, ref_lines) :: rest ->
      let parity =
        ref_lines <> []
        && List.for_all
             (fun (p, lines) ->
               let same = lines = ref_lines in
               if not same then
                 Format.printf
                   "  DIVERGENCE: fingerprints differ between \
                    NEGDL_PARTITIONS=%d and NEGDL_PARTITIONS=%d@."
                   p0 p;
               same)
             rest
      in
      (counts, parity)

(* One point of the domain-scaling curve: morsel-auto TC wall time under a
   pool of [d] participants, plus the scheduling and store-contention
   counters of one instrumented run.  The contention deltas are taken
   around a database this row has never seen — re-interning tuples that
   are already present rides the lock-free probe path, so only fresh rows
   prove the stripes (and the per-domain caches) were really exercised. *)
type curve_row = {
  cr_domains : int;
  cr_seconds : float;
  cr_tuples : int;
  cr_morsels : int;
  cr_steals : int;
  cr_shard_skew : int;
  cr_stripe_locks : int;
  cr_cache_hits : int;
  cr_cache_misses : int;
  cr_partition_skew : int;
}

let par_bench ~quick () =
  let host_domains = Domain.recommended_domain_count () in
  let avail =
    (* NEGDL_DOMAINS drives how far the scaling curve may go; without it
       the host's core count is the ceiling.  Points past the ceiling are
       reported as skipped, never silently measured oversubscribed. *)
    match Sys.getenv_opt "NEGDL_DOMAINS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some d when d >= 1 -> d
        | _ -> host_domains)
    | None -> host_domains
  in
  Format.printf
    "Intra-rule parallelism benchmark (morsel sharding%s, host domains %d, \
     %d store partitions) -> BENCH_par.json@."
    (if quick then ", quick mode" else "")
    host_domains
    (Relalg.Store.partitions ());
  let pool = Domain_pool.create ~size:3 () in
  let pool1 = Domain_pool.create ~size:0 () in
  let best_reps = if quick then 3 else 5 in
  (* The single-heavy-rule regime: after stage 1 every semi-naive stage of
     TC has exactly one runnable delta application, so rule-level fan-out
     ([`Rules]) degenerates to sequential execution no matter how many
     domains the pool holds.  Morsel sharding splits that one
     application's driving input across the pool instead. *)
  let n = if quick then 160 else 220 in
  let heavy_db =
    db_of (Generate.random ~seed:97 ~n ~p:(3.2 /. float_of_int n))
  in
  let results = ref [] in
  let record name tuples seconds =
    results := (name, tuples, seconds) :: !results;
    Format.printf "  %-36s %10.2f ms %10d tuples@." name (seconds *. 1e3)
      tuples
  in
  let measure name f =
    let r, t = best_of best_reps f in
    record name (Idb.total_cardinal r) t;
    (r, t)
  in
  (* Order matters on small hosts: the single-domain configurations
     (sequential reference and par=1) are timed {e before} anything runs
     on [pool] — worker domains spawn lazily on first use and, once
     alive, every minor collection has to rendezvous them, which dilates
     unrelated single-domain wall clock by tens of percent on a one-core
     box.  One untimed warm-up run of each keeps cold-start effects out
     of the best-of window. *)
  let seq () = Inflationary.eval ~engine:`Seminaive tc_program heavy_db in
  let par1 () =
    Inflationary.eval ~engine:`Parallel ~pool:pool1 ~grain:`Auto tc_program
      heavy_db
  in
  ignore (seq ());
  ignore (par1 ());
  (* The par=1 tax is a ratio of these two, so their reps are interleaved:
     background load drifting between two separate best-of windows would
     land straight in the ratio, and the 1.05 bound is tight. *)
  let r_seq = ref None and r_par1 = ref None in
  let t_seq = ref infinity and t_par1 = ref infinity in
  for _ = 1 to 2 * best_reps do
    let r, t = wall seq in
    if t < !t_seq then t_seq := t;
    r_seq := Some r;
    let r, t = wall par1 in
    if t < !t_par1 then t_par1 := t;
    r_par1 := Some r
  done;
  let r_seq = Option.get !r_seq and t_seq = !t_seq in
  let r_par1 = Option.get !r_par1 and t_par1 = !t_par1 in
  record "tc_heavy_seminaive" (Idb.total_cardinal r_seq) t_seq;
  record "tc_heavy_par1_morsel_auto" (Idb.total_cardinal r_par1) t_par1;
  let r_rules, t_rules =
    measure "tc_heavy_par4_rule_fanout" (fun () ->
        Inflationary.eval ~engine:`Parallel ~pool ~grain:`Rules tc_program
          heavy_db)
  in
  let r_auto, t_auto =
    measure "tc_heavy_par4_morsel_auto" (fun () ->
        Inflationary.eval ~engine:`Parallel ~pool ~grain:`Auto tc_program
          heavy_db)
  in
  let models_agree =
    Idb.equal r_seq r_rules && Idb.equal r_seq r_auto
    && Idb.equal r_seq r_par1
  in
  (* Scheduling counters, from a stats run of the morsel configuration. *)
  let sched = Stats.create () in
  ignore
    (Inflationary.eval ~engine:`Parallel ~pool ~grain:`Auto ~stats:sched
       tc_program heavy_db);
  Format.printf
    "  scheduling: %d morsels, %d steals, max shard skew %d@."
    sched.Stats.morsels sched.Stats.steals sched.Stats.max_shard_skew;
  (* --- The domain-scaling curve ------------------------------------- *)
  let curve_points = [ 1; 2; 4; 8 ] in
  Format.printf "  scaling curve (available domains %d):@." avail;
  let curve =
    List.map
      (fun d ->
        if d > avail then begin
          Format.printf "    d=%d: skipped (%d domains available)@." d avail;
          (d, None)
        end
        else begin
          let pool_d = Domain_pool.create ~size:(d - 1) () in
          let run db () =
            Inflationary.eval ~engine:`Parallel ~pool:pool_d ~grain:`Auto
              tc_program db
          in
          ignore (run heavy_db ());
          let r, t = best_of best_reps (run heavy_db) in
          let fresh_db =
            db_of
              (Generate.random ~seed:(4000 + d) ~n
                 ~p:(3.2 /. float_of_int n))
          in
          let before = Relalg.Store.contention () in
          let s = Stats.create () in
          ignore
            (Inflationary.eval ~engine:`Parallel ~pool:pool_d ~grain:`Auto
               ~stats:s tc_program fresh_db);
          let after = Relalg.Store.contention () in
          Domain_pool.shutdown pool_d;
          let row =
            {
              cr_domains = d;
              cr_seconds = t;
              cr_tuples = Idb.total_cardinal r;
              cr_morsels = s.Stats.morsels;
              cr_steals = s.Stats.steals;
              cr_shard_skew = s.Stats.max_shard_skew;
              cr_stripe_locks =
                after.Relalg.Store.stripe_locks
                - before.Relalg.Store.stripe_locks;
              cr_cache_hits =
                after.Relalg.Store.cache_hits
                - before.Relalg.Store.cache_hits;
              cr_cache_misses =
                after.Relalg.Store.cache_misses
                - before.Relalg.Store.cache_misses;
              cr_partition_skew = after.Relalg.Store.partition_skew;
            }
          in
          Format.printf
            "    d=%d: %8.2f ms  morsels %d steals %d skew %d  locks %d \
             cache %d/%d pskew %d@."
            d (t *. 1e3) row.cr_morsels row.cr_steals row.cr_shard_skew
            row.cr_stripe_locks row.cr_cache_hits
            (row.cr_cache_hits + row.cr_cache_misses) row.cr_partition_skew;
          (d, Some row)
        end)
      curve_points
  in
  let curve_rows = List.filter_map snd curve in
  let t_d1 =
    match List.find_opt (fun r -> r.cr_domains = 1) curve_rows with
    | Some r -> r.cr_seconds
    | None -> nan
  in
  (* Any multi-domain row must show the stripes and caches actually being
     touched: a partitioned store whose counters stay flat under a
     parallel run over fresh tuples means the instrumentation (or the
     partitioning itself) is wired to nothing. *)
  let contention_check =
    match List.filter (fun r -> r.cr_domains >= 2) curve_rows with
    | [] -> `Skipped
    | multi ->
        if
          List.for_all
            (fun r ->
              r.cr_stripe_locks + r.cr_cache_hits + r.cr_cache_misses > 0)
            multi
        then `Pass
        else `Fail
  in
  (* --- Merge microbench: set-union barrier vs partition concat ------- *)
  (* The seed's hashed builder_merge walked the smaller participant's
     Patricia set (a membership probe per id to keep the cardinal exact)
     and unioned the trees.  The partitioned builder appends per-stripe
     int vectors and defers dedup to build.  Same input — the TC closure
     rows split round-robin across 4 shard builders — timed head to head:
     the seed path is simulated on pre-built Idsets, the partitioned path
     times builder_merge folding plus the final build. *)
  let merge_n = if quick then 130 else 190 in
  let merge_db =
    db_of (Generate.random ~seed:77 ~n:merge_n ~p:(3.0 /. float_of_int merge_n))
  in
  let closure =
    Inflationary.eval ~engine:`Seminaive ~storage:`Hashed tc_program merge_db
  in
  let closure_ids =
    match Relation.ids (Idb.get closure "s") with
    | Some s -> s
    | None -> assert false
  in
  let rows =
    Array.of_list
      (List.rev (Relalg.Idset.fold (fun id acc -> id :: acc) closure_ids []))
  in
  let shards = 4 in
  let shard_lists = Array.make shards [] in
  Array.iteri
    (fun i id -> shard_lists.(i mod shards) <- id :: shard_lists.(i mod shards))
    rows;
  let shard_arrays =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      shard_lists
  in
  let shard_sets = Array.map Relalg.Idset.of_sorted_array shard_arrays in
  let merge_reps = if quick then 30 else 100 in
  let seed_merge () =
    let acc = ref shard_sets.(0) in
    let card = ref (Relalg.Idset.cardinal shard_sets.(0)) in
    for i = 1 to shards - 1 do
      let small = shard_sets.(i) in
      let fresh =
        Relalg.Idset.fold
          (fun id c -> if Relalg.Idset.mem id !acc then c else c + 1)
          small 0
      in
      card := !card + fresh;
      acc := Relalg.Idset.union !acc small
    done;
    (!acc, !card)
  in
  let (_, seed_card), t_seed_merge = best_of merge_reps seed_merge in
  let shard_tuples =
    Array.map (fun a -> Array.map Relalg.Store.tuple a) shard_arrays
  in
  let fresh_builders () =
    Array.map
      (fun tuples ->
        let b = Relation.builder ~storage:`Hashed 2 in
        Array.iter (fun t -> ignore (Relation.builder_add b t)) tuples;
        b)
      shard_tuples
  in
  let t_part_merge = ref infinity in
  let part_card = ref 0 in
  for _ = 1 to merge_reps do
    (* Builder population is untimed: the merge tax being measured starts
       at the barrier, when full per-participant accumulators meet. *)
    let bs = fresh_builders () in
    let t0 = Unix.gettimeofday () in
    let merged = ref bs.(0) in
    for i = 1 to shards - 1 do
      merged := Relation.builder_merge !merged bs.(i)
    done;
    let built = Relation.build !merged in
    let t = Unix.gettimeofday () -. t0 in
    part_card := Relation.cardinal built;
    if t < !t_part_merge then t_part_merge := t
  done;
  let t_part_merge = !t_part_merge in
  let merge_parity = seed_card = Array.length rows && !part_card = seed_card in
  let merge_below_seed = t_part_merge < t_seed_merge in
  Format.printf
    "  merge microbench (%d rows, %d shards): seed %.1f us, partitioned \
     %.1f us (%.2fx) %s@."
    (Array.length rows) shards (t_seed_merge *. 1e6) (t_part_merge *. 1e6)
    (t_seed_merge /. t_part_merge)
    (ok (merge_below_seed && merge_parity));
  let speedup_morsel = t_rules /. t_auto in
  let speedup_rules = t_seq /. t_rules in
  let par1_tax = t_par1 /. t_seq in
  Format.printf "  morsel auto vs rule fan-out: %.2fx@." speedup_morsel;
  Format.printf "  rule fan-out vs seminaive:   %.2fx@." speedup_rules;
  Format.printf "  par=1 sharding tax:          %.3fx (bound 1.05)@." par1_tax;
  (* Model parity across the grain ablation, all saturation semantics. *)
  let grains : Engine.grain list = [ `Fixed 1; `Fixed 7; `Auto; `Rules ] in
  let reference = par_model_fingerprint ~engine:`Seminaive () in
  let grain_divergences =
    List.concat_map
      (fun grain ->
        let fp = par_model_fingerprint ~engine:`Parallel ~pool ~grain () in
        List.filter_map
          (fun ((name, s), (name', v)) ->
            assert (name = name');
            if s = v then None else Some (grain_name grain, name, s, v))
          (List.combine reference fp))
      grains
  in
  List.iter
    (fun (gname, name, s, v) ->
      Format.printf "  DIVERGENCE %s under grain %s: seq=%d got=%d@." name
        gname s v)
    grain_divergences;
  let grain_parity = grain_divergences = [] in
  Format.printf "  parity: parallel models (%d entries x %d grains) %s@."
    (List.length reference) (List.length grains) (ok grain_parity);
  (* The grain default must be inert outside the [`Parallel] engine: the
     full E1-E8 fingerprint (SAT census, Fagin decider, distance queries —
     all on sequential defaults) cannot move with it. *)
  let seq_grains : Engine.grain list =
    if quick then [ `Fixed 7 ] else [ `Fixed 1; `Fixed 7; `Rules ]
  in
  let fp_default = parity_fingerprint () in
  let seq_divergences =
    List.concat_map
      (fun grain ->
        List.filter_map
          (fun ((name, s), (name', v)) ->
            assert (name = name');
            if s = v then None else Some (grain_name grain, name, s, v))
          (List.combine fp_default
             (with_grain grain parity_fingerprint)))
      seq_grains
  in
  List.iter
    (fun (gname, name, s, v) ->
      Format.printf
        "  DIVERGENCE %s: default grain=%d, grain %s=%d (sequential path!)@."
        name s gname v)
    seq_divergences;
  let seq_grain_parity = seq_divergences = [] in
  Format.printf
    "  parity: E1-E8 fingerprints (%d entries x %d grain defaults) %s@."
    (List.length fp_default) (List.length seq_grains) (ok seq_grain_parity);
  (* Cross-partition parity: the same fingerprints must come out of fresh
     processes running the store at 1, 2, 4 and 8 stripes. *)
  let partition_counts, partition_parity = par_partition_parity ~quick () in
  Format.printf "  parity: fingerprints across NEGDL_PARTITIONS in {%s} %s@."
    (String.concat ", " (List.map string_of_int partition_counts))
    (ok partition_parity);
  let par1_ok = par1_tax <= 1.05 in
  (* The >= 2x morsel-over-fan-out check needs real parallel hardware: with
     fewer than 4 domains the pool's workers time-slice one core and the
     wall-clock gain is physically unobtainable, so the check is recorded
     as skipped rather than silently passed or unfairly failed. *)
  let morsel_check =
    if host_domains < 4 then `Skipped
    else if speedup_morsel >= 2.0 then `Pass
    else `Fail
  in
  let check_name = function
    | `Skipped -> "skipped"
    | `Pass -> "pass"
    | `Fail -> "fail"
  in
  Format.printf "  morsel >= 2x over rule fan-out: %s@."
    (check_name morsel_check);
  Format.printf "  contention counters non-zero (d >= 2): %s@."
    (check_name contention_check);
  let oc = open_out "BENCH_par.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"host_domains\": %d,\n" host_domains;
  out "  \"available_domains\": %d,\n" avail;
  out "  \"store_partitions\": %d,\n" (Relalg.Store.partitions ());
  out "  \"grain\": %S,\n" (grain_name (Engine.default_grain ()));
  out "  \"pool_participants\": %d,\n" (Domain_pool.size pool + 1);
  out "  \"benchmarks\": [\n";
  let entries = List.rev !results in
  List.iteri
    (fun i (name, tuples, seconds) ->
      out "    {\"name\": %S, \"ns_per_op\": %.0f, \"tuples\": %d}%s\n" name
        (seconds *. 1e9) tuples
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n";
  out "  \"scaling\": [\n";
  List.iteri
    (fun i (d, row) ->
      (match row with
      | None ->
          out
            "    {\"domains\": %d, \"skipped\": true, \"reason\": \
             \"only %d domains available\"}"
            d avail
      | Some r ->
          out
            "    {\"domains\": %d, \"ns_per_op\": %.0f, \
             \"speedup_vs_1\": %.3f, \"tuples\": %d, \"morsels\": %d, \
             \"steals\": %d, \"max_shard_skew\": %d, \
             \"stripe_locks\": %d, \"cache_hits\": %d, \
             \"cache_misses\": %d, \"partition_skew\": %d}"
            r.cr_domains
            (r.cr_seconds *. 1e9)
            (t_d1 /. r.cr_seconds)
            r.cr_tuples r.cr_morsels r.cr_steals r.cr_shard_skew
            r.cr_stripe_locks r.cr_cache_hits r.cr_cache_misses
            r.cr_partition_skew);
      out "%s\n" (if i = List.length curve - 1 then "" else ","))
    curve;
  out "  ],\n";
  out "  \"merge\": {\n";
  out "    \"rows\": %d,\n" (Array.length rows);
  out "    \"shards\": %d,\n" shards;
  out "    \"seed_ns\": %.0f,\n" (t_seed_merge *. 1e9);
  out "    \"partitioned_ns\": %.0f\n" (t_part_merge *. 1e9);
  out "  },\n";
  out "  \"scheduling\": {\n";
  out "    \"morsels\": %d,\n" sched.Stats.morsels;
  out "    \"steals\": %d,\n" sched.Stats.steals;
  out "    \"max_shard_skew\": %d\n" sched.Stats.max_shard_skew;
  out "  },\n";
  out "  \"speedups\": {\n";
  out "    \"morsel_vs_rule_fanout\": %.3f,\n" speedup_morsel;
  out "    \"rule_fanout_vs_seminaive\": %.3f,\n" speedup_rules;
  out "    \"par1_vs_seminaive_tax\": %.3f\n" par1_tax;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"models_agree\": %b,\n" models_agree;
  out "    \"grain_parity_parallel\": %b,\n" grain_parity;
  out "    \"grain_parity_sequential_paths\": %b,\n" seq_grain_parity;
  out "    \"partition_parity\": %b,\n" partition_parity;
  out "    \"merge_parity\": %b,\n" merge_parity;
  out "    \"merge_below_seed\": %b,\n" merge_below_seed;
  out "    \"par1_within_5pct\": %b,\n" par1_ok;
  out "    \"contention_counters_nonzero\": %S,\n"
    (check_name contention_check);
  out "    \"morsel_speedup_2x\": %S\n" (check_name morsel_check);
  out "  }\n";
  out "}\n";
  close_out oc;
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool1;
  if
    not
      (models_agree && grain_parity && seq_grain_parity && partition_parity
     && merge_parity && merge_below_seed && par1_ok
     && morsel_check <> `Fail
      && contention_check <> `Fail)
  then begin
    Format.printf "  intra-rule parallelism check failed — failing@.";
    exit 1
  end

(* --- Part 8: incremental serving benchmark (BENCH_serve.json) ---------------- *)

(* Reachability with a negation-dependent complement: updates cross a
   stratum boundary, so every batch exercises over-deletion, put-back and
   the seeded insert phase. *)
let serve_program =
  Parser.parse_program_exn
    "r(X, Y) :- e(X, Y). r(X, Y) :- e(X, Z), r(Z, Y). reached(Y) :- r(X, \
     Y). unreached(X) :- v(X), !reached(X)."

(* Many small components: a single-fact update only disturbs the component
   it lands in, so incremental work must stay roughly [1/k] of a full
   re-saturation — the delta-scaling regime a server lives in.  (One dense
   strongly-connected graph is DRed's worst case: every closure fact
   depends on every edge, and over-deletion legitimately touches
   everything.) *)
let serve_db ~seed ~components ~size =
  let g =
    Generate.disjoint_copies components
      (Generate.random ~seed ~n:size ~p:(1.8 /. float_of_int size))
  in
  let n = Digraph.vertex_count g in
  let db = db_of g in
  ( List.fold_left
      (fun d i ->
        Database.add_fact "v" (Tuple.singleton (Digraph.vertex_symbol i)) d)
      db
      (List.init n (fun i -> i)),
    n )

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (float_of_int n *. q)))

let serve_bench ~quick () =
  Format.printf
    "Incremental serving benchmark (delta-driven DRed%s) -> BENCH_serve.json@."
    (if quick then ", quick mode" else "");
  let require = function Ok v -> v | Error e -> failwith e in
  let components = if quick then 12 else 36 in
  let batches = if quick then 60 else 240 in
  let initial_db, n = serve_db ~seed:83 ~components ~size:8 in
  let stats = Stats.create () in
  let t = require (Serve.create ~stats serve_program initial_db) in
  let ra_materialize = stats.Stats.rule_applications in
  let td_materialize = stats.Stats.tuples_derived in
  let edges_of t =
    match Database.relation "e" (Serve.database t) with
    | None -> [||]
    | Some rel ->
      Array.of_list (List.rev (Relation.fold (fun tup acc -> tup :: acc) rel []))
  in
  let rng = Prng.create 20260808 in
  let vertex i = Digraph.vertex_symbol i in
  let update_times = ref [] and query_times = ref [] in
  let timed cell f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    cell := (Unix.gettimeofday () -. t0) :: !cell;
    r
  in
  (* The update stream: deletions of present edges interleaved with
     re-insertions and fresh random edges (the universe stays fixed, so the
     enumerating-rule rescue never fires and [full_applications] must stay
     0).  Every batch is followed by three queries — one repeated, so the
     version-tagged cache both hits and gets invalidated continuously. *)
  let deleted = ref [] in
  let parity_failures = ref 0 in
  for i = 1 to batches do
    (match !deleted with
    | tup :: rest when i mod 2 = 1 ->
      deleted := rest;
      ignore (require (timed update_times (fun () -> Serve.insert t [ ("e", tup) ])))
    | _ -> (
      let edges = edges_of t in
      if i mod 4 = 0 || Array.length edges = 0 then
        let u = Prng.int rng n and v = Prng.int rng n in
        ignore
          (timed update_times (fun () ->
               Serve.insert t [ ("e", Tuple.pair (vertex u) (vertex v)) ]))
      else begin
        let tup = edges.(Prng.int rng (Array.length edges)) in
        deleted := tup :: !deleted;
        ignore
          (require (timed update_times (fun () -> Serve.delete t [ ("e", tup) ])))
      end));
    let u = Prng.int rng n in
    let q = { Ast.pred = "r"; args = [ Ast.Const (vertex u); Ast.Var "Y" ] } in
    ignore (timed query_times (fun () -> Serve.query t q));
    ignore (timed query_times (fun () -> Serve.query t q));
    let unreached = { Ast.pred = "unreached"; args = [ Ast.Var "X" ] } in
    ignore (require (timed query_times (fun () -> Serve.query t unreached)));
    (* Spot parity: the maintained model vs from-scratch saturation. *)
    if i mod (batches / 4) = 0 then begin
      let scratch = Stratified.eval_exn serve_program (Serve.database t) in
      if not (Idb.equal (Serve.snapshot t) scratch) then begin
        incr parity_failures;
        Format.printf "  DIVERGENCE after batch %d@." i
      end
    end
  done;
  let final_scratch = Stratified.eval_exn serve_program (Serve.database t) in
  let final_parity = Idb.equal (Serve.snapshot t) final_scratch in
  (* Batch parity: the net of all [batches] single-fact updates applied as
     ONE batch to a fresh server must land on the same model. *)
  let tuples_of db =
    match Database.relation "e" db with
    | None -> []
    | Some rel -> List.rev (Relation.fold (fun tup acc -> tup :: acc) rel [])
  in
  let mem_edge db tup = Database.mem_fact "e" tup db in
  let net_additions =
    List.filter_map
      (fun tup ->
        if mem_edge initial_db tup then None else Some ("e", tup))
      (tuples_of (Serve.database t))
  and net_removals =
    List.filter_map
      (fun tup ->
        if mem_edge (Serve.database t) tup then None else Some ("e", tup))
      (tuples_of initial_db)
  in
  let one_batch = require (Serve.create serve_program initial_db) in
  ignore
    (require
       (Serve.update one_batch ~additions:net_additions ~removals:net_removals));
  let batch_parity =
    Idb.fingerprint (Serve.snapshot one_batch)
    = Idb.fingerprint (Serve.snapshot t)
    && Idb.equal (Serve.snapshot one_batch) (Serve.snapshot t)
  in
  (* Work accounting: the incremental path across all batches vs paying one
     full re-saturation per batch (what the old maintenance loop did). *)
  let incremental_ra = stats.Stats.rule_applications - ra_materialize in
  let incremental_td = stats.Stats.tuples_derived - td_materialize in
  let full_stats = Stats.create () in
  ignore
    (Stratified.eval ~stats:full_stats serve_program (Serve.database t));
  let full_ra = full_stats.Stats.rule_applications in
  let full_td = full_stats.Stats.tuples_derived in
  let extra name =
    match List.assoc_opt name stats.Stats.extra with Some v -> v | None -> 0
  in
  let delta_apps = extra "dred delta applications" in
  let putback_apps = extra "dred putback applications" in
  let full_apps = extra "dred full applications" in
  (* Work is measured in head tuples emitted, not application count: a
     delta application over a one-fact change emits a handful of tuples
     where a full re-saturation re-derives the entire model. *)
  let work_ratio =
    float_of_int incremental_td /. float_of_int (max 1 (full_td * batches))
  in
  let _, t_full = best_of 3 (fun () ->
      Stratified.eval_exn serve_program (Serve.database t))
  in
  let updates = List.length !update_times in
  let total_update_time = List.fold_left ( +. ) 0.0 !update_times in
  let updates_per_sec = float_of_int updates /. total_update_time in
  let qsorted = Array.of_list !query_times in
  Array.sort compare qsorted;
  let p50 = percentile qsorted 0.50 and p99 = percentile qsorted 0.99 in
  let c = Serve.counters t in
  Format.printf "  %d vertices, %d update batches, %d queries@." n updates
    c.Serve.queries;
  Format.printf "  sustained: %10.0f updates/sec (mean %.3f ms/batch)@."
    updates_per_sec
    (1e3 *. total_update_time /. float_of_int updates);
  Format.printf "  query latency: p50 %8.1f us   p99 %8.1f us@." (1e6 *. p50)
    (1e6 *. p99);
  Format.printf "  cache: %d hits / %d misses@." c.Serve.cache_hits
    c.Serve.cache_misses;
  Format.printf
    "  work: %d incremental tuples derived (%d applications: %d delta, %d \
     putback, %d full) vs %d tuples per re-saturation -> ratio %.4f@."
    incremental_td incremental_ra delta_apps putback_apps full_apps full_td
    work_ratio;
  Format.printf "  one full re-saturation: %.2f ms (%.1fx a mean batch)@."
    (1e3 *. t_full)
    (t_full /. (total_update_time /. float_of_int updates));
  let no_full = full_apps = 0 in
  let delta_scaling = work_ratio < 0.5 in
  let parity = final_parity && !parity_failures = 0 in
  Format.printf "  parity: maintained = from-scratch %s, one-batch net %s@."
    (ok parity) (ok batch_parity);
  Format.printf "  checks: no full applications %s, delta scaling %s@."
    (ok no_full) (ok delta_scaling);
  let oc = open_out "BENCH_serve.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"vertices\": %d,\n" n;
  out "  \"batches\": %d,\n" updates;
  out "  \"updates_per_sec\": %.0f,\n" updates_per_sec;
  out "  \"query_p50_us\": %.1f,\n" (1e6 *. p50);
  out "  \"query_p99_us\": %.1f,\n" (1e6 *. p99);
  out "  \"queries\": %d,\n" c.Serve.queries;
  out "  \"cache_hits\": %d,\n" c.Serve.cache_hits;
  out "  \"cache_misses\": %d,\n" c.Serve.cache_misses;
  out "  \"full_resaturation_ms\": %.3f,\n" (1e3 *. t_full);
  out "  \"work\": {\n";
  out "    \"incremental_tuples_derived\": %d,\n" incremental_td;
  out "    \"incremental_rule_applications\": %d,\n" incremental_ra;
  out "    \"delta_applications\": %d,\n" delta_apps;
  out "    \"putback_applications\": %d,\n" putback_apps;
  out "    \"full_applications\": %d,\n" full_apps;
  out "    \"tuples_derived_per_resaturation\": %d,\n" full_td;
  out "    \"rule_applications_per_resaturation\": %d,\n" full_ra;
  out "    \"vs_resaturating_every_batch\": %.4f\n" work_ratio;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"parity_incremental_vs_scratch\": %b,\n" parity;
  out "    \"parity_one_net_batch\": %b,\n" batch_parity;
  out "    \"no_full_applications\": %b,\n" no_full;
  out "    \"delta_scaling\": %b\n" delta_scaling;
  out "  }\n";
  out "}\n";
  close_out oc;
  if not (parity && batch_parity && no_full && delta_scaling) then begin
    Format.printf "  incremental serving check failed — failing@.";
    exit 1
  end

(* --- Part 9: snapshot persistence benchmark (BENCH_snap.json) ---------------- *)

(* Restore vs re-saturation: loading a snapshot must replace the whole
   fixpoint computation with a linear read of the file.  Two workloads:
   plain transitive closure on one giant component (the join-heavy regime,
   where saturation is most expensive relative to the model it produces)
   and the serving reachability program (negation, a stratum boundary —
   the model [negdl serve --snapshot] warm-restarts from).  The gate is on
   the large TC configuration: restore must be at least 10x faster than
   cold saturation, and the restored model must be identical. *)

let snap_bench ~quick () =
  Format.printf
    "Snapshot persistence benchmark (restore vs re-saturation%s) -> \
     BENCH_snap.json@."
    (if quick then ", quick mode" else "");
  let require = function
    | Ok v -> v
    | Error e -> failwith (Snapshot.error_to_string e)
  in
  let repeats = if quick then 3 else 5 in
  let snap_file = Filename.temp_file "negdl_bench" ".snap" in
  let idb_of_bindings program bindings =
    List.fold_left
      (fun idb (name, rel) -> Idb.set idb name rel)
      (Idb.of_program program) bindings
  in
  let run name program db =
    let idb, t_cold =
      best_of repeats (fun () -> Stratified.eval_exn program db)
    in
    let image, t_capture =
      wall (fun () ->
          require
            (Snapshot.capture ~program ~semantics:"stratified" ~db
               (Idb.bindings idb)))
    in
    let bytes = require (Snapshot.write_file snap_file image) in
    let restored = ref None in
    let (), t_restore =
      best_of repeats (fun () ->
          let image = require (Snapshot.read_file snap_file) in
          require
            (Snapshot.check_program image ~program ~semantics:"stratified");
          let r = require (Snapshot.restore image) in
          restored := Some (idb_of_bindings program r.Snapshot.r_idb))
    in
    let parity =
      match !restored with Some r -> Idb.equal idb r | None -> false
    in
    let tuples =
      List.fold_left
        (fun acc r -> acc + r.Snapshot.row_count)
        0 image.Snapshot.relations
    in
    let speedup = t_cold /. t_restore in
    Format.printf
      "  %-8s cold %8.2f ms   restore %8.3f ms   %7.1fx   %8d B (%d \
       tuples, %.1f B/tuple)   parity %s@."
      name (1e3 *. t_cold) (1e3 *. t_restore) speedup bytes tuples
      (float_of_int bytes /. float_of_int (max 1 tuples))
      (ok parity);
    (name, t_cold, t_capture, t_restore, bytes, tuples, speedup, parity)
  in
  (* Full mode: one dense component (avg out-degree 16), so saturation does
     ~degree x |TC| join work while the snapshot holds just the |TC| rows —
     the regime the 10x gate is about. *)
  let tc_n = if quick then 100 else 500 in
  let tc_deg = if quick then 2.0 else 24.0 in
  let tc_db =
    db_of (Generate.random ~seed:7 ~n:tc_n ~p:(tc_deg /. float_of_int tc_n))
  in
  let reach_db, _ =
    serve_db ~seed:83 ~components:(if quick then 8 else 24) ~size:8
  in
  let tc_result = run "tc" tc_program tc_db in
  let reach_result = run "reach" serve_program reach_db in
  let results = [ tc_result; reach_result ] in
  Sys.remove snap_file;
  let _, tc_cold, _, tc_restore, tc_bytes, _, tc_speedup, _ =
    List.hd results
  in
  let all_parity = List.for_all (fun (_, _, _, _, _, _, _, p) -> p) results in
  let gate = if quick then 1.0 else 10.0 in
  let fast_enough = tc_speedup >= gate in
  Format.printf "  checks: parity %s, restore >= %.0fx on tc %s@."
    (ok all_parity) gate (ok fast_enough);
  let oc = open_out "BENCH_snap.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"file_bytes\": %d,\n" tc_bytes;
  out "  \"cold_saturation_ms\": %.3f,\n" (1e3 *. tc_cold);
  out "  \"restore_ms\": %.3f,\n" (1e3 *. tc_restore);
  out "  \"restore_speedup\": %.1f,\n" tc_speedup;
  out "  \"workloads\": [\n";
  List.iteri
    (fun i (name, cold, capture, restore, bytes, tuples, speedup, parity) ->
      out "    {\n";
      out "      \"name\": %S,\n" name;
      out "      \"cold_saturation_ms\": %.3f,\n" (1e3 *. cold);
      out "      \"capture_ms\": %.3f,\n" (1e3 *. capture);
      out "      \"restore_ms\": %.3f,\n" (1e3 *. restore);
      out "      \"restore_speedup\": %.1f,\n" speedup;
      out "      \"file_bytes\": %d,\n" bytes;
      out "      \"tuples\": %d,\n" tuples;
      out "      \"bytes_per_tuple\": %.1f,\n"
        (float_of_int bytes /. float_of_int (max 1 tuples));
      out "      \"parity\": %b\n" parity;
      out "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  out "  ],\n";
  out "  \"checks\": {\n";
  out "    \"parity\": %b,\n" all_parity;
  out "    \"restore_speedup_gate\": %.0f,\n" gate;
  out "    \"fast_enough\": %b\n" fast_enough;
  out "  }\n";
  out "}\n";
  close_out oc;
  if not (all_parity && fast_enough) then begin
    Format.printf "  snapshot persistence check failed — failing@.";
    exit 1
  end

(* --- Part 10: limit-predicate benchmark (BENCH_agg.json) --------------------- *)

(* Shortest path with a min limit predicate vs the pair-materializing
   Datalog-not encoding of the same query: the two programs share every
   rule — the limit version adds only the [dist min 2.] declaration, so
   the measured gap is exactly what dominant-tuple tightening saves.  The
   baseline needs the [S <= cap] guard to terminate on a cyclic graph (it
   materialises every (node, cost) pair up to the cap); the limit version
   keeps one bound per node and must agree with the baseline's
   dominant-filtered projection and on the near/far stratum above.  A max
   (critical-path) workload over a layered DAG exercises the other
   polarity. *)

let agg_min_text ~cap ~thr =
  Printf.sprintf
    "dist(X, 0) :- source(X).\n\
     dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W, S <= %d.\n\
     near(X) :- dist(X, D), D <= %d.\n\
     far(X) :- node(X), !near(X)."
    cap thr

let agg_max_text ~thr =
  Printf.sprintf
    "best(X, 0) :- source(X).\n\
     best(Y, S) :- best(X, D), edge(X, Y, W), S = D + W.\n\
     good(X) :- best(X, D), D >= %d.\n\
     modest(X) :- node(X), !good(X)."
    thr

let with_limits decl text = Parser.parse_program_exn (decl ^ "\n" ^ text)

(* A ring of [n] nodes (so every node is reachable and the baseline's
   cost frontier wraps all the way around) plus [chords] random weighted
   shortcuts that give the min workload genuinely competing paths. *)
let agg_ring_db ~seed ~n ~chords =
  let rng = Prng.create seed in
  let v i = Symbol.intern (Printf.sprintf "n%d" i) in
  let w k = Symbol.of_int k in
  let edge db a b wt =
    Database.add_fact "edge"
      (Tuple.of_list [ v a; v b; w wt ])
      (Database.add_universe [ v a; v b; w wt ] db)
  in
  let db = Database.create ~universe:[] in
  let db = Database.add_fact "source" (Tuple.singleton (v 0))
      (Database.add_universe [ v 0 ] db) in
  let db =
    List.fold_left
      (fun db i -> edge db i ((i + 1) mod n) (1 + Prng.int rng 9))
      db
      (List.init n (fun i -> i))
  in
  let db =
    List.fold_left
      (fun db _ ->
        edge db (Prng.int rng n) (Prng.int rng n) (1 + Prng.int rng 9))
      db
      (List.init chords (fun i -> i))
  in
  List.fold_left
    (fun db i ->
      Database.add_fact "node" (Tuple.singleton (v i))
        (Database.add_universe [ v i ] db))
    db
    (List.init n (fun i -> i))

(* A layered DAG for the max workload: [layers] x [width] vertices, every
   vertex wired to a few successors in the next layer. *)
let agg_dag_db ~seed ~layers ~width =
  let rng = Prng.create seed in
  let v l i = Symbol.intern (Printf.sprintf "l%d_%d" l i) in
  let db = Database.create ~universe:[] in
  let db =
    List.fold_left
      (fun db i ->
        Database.add_fact "source" (Tuple.singleton (v 0 i))
          (Database.add_universe [ v 0 i ] db))
      db
      (List.init width (fun i -> i))
  in
  let db = ref db in
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      for _ = 1 to 3 do
        let j = Prng.int rng width and wt = Symbol.of_int (1 + Prng.int rng 9) in
        db :=
          Database.add_fact "edge"
            (Tuple.of_list [ v l i; v (l + 1) j; wt ])
            (Database.add_universe [ v l i; v (l + 1) j; wt ] !db)
      done
    done
  done;
  for l = 0 to layers - 1 do
    for i = 0 to width - 1 do
      db :=
        Database.add_fact "node" (Tuple.singleton (v l i))
          (Database.add_universe [ v l i ] !db)
    done
  done;
  !db

let agg_bench ~quick () =
  Format.printf
    "Limit-predicate benchmark (tightening vs pair materialization%s) -> \
     BENCH_agg.json@."
    (if quick then ", quick mode" else "");
  let reps = if quick then 3 else 5 in
  let n = if quick then 48 else 160 in
  let cap = if quick then 48 else 120 in
  let thr = cap / 2 in
  let min_limit = with_limits "dist min 2." (agg_min_text ~cap ~thr) in
  let min_pairs = Parser.parse_program_exn (agg_min_text ~cap ~thr) in
  let min_db = agg_ring_db ~seed:20260808 ~n ~chords:(3 * n) in
  let layers = if quick then 12 else 30 in
  let width = if quick then 6 else 10 in
  let max_limit = with_limits "best max 2." (agg_max_text ~thr:(2 * layers)) in
  let max_pairs = Parser.parse_program_exn (agg_max_text ~thr:(2 * layers)) in
  let max_db = agg_dag_db ~seed:424242 ~layers ~width in
  (* The gate only makes sense when the workload actually crosses a
     stratum boundary (the negation above the limit predicate); report
     honestly if a generator change ever flattens it. *)
  let strata_of p =
    match Stratify.stratify p with
    | Stratify.Stratified s -> List.length s.Stratify.strata
    | _ -> 0
  in
  let min_strata = strata_of min_limit in
  let gate_applies = min_strata >= 2 in
  let run_workload name limit_p pairs_p db ~kind ~limit_pred ~derived =
    let limit_idb, t_limit =
      best_of reps (fun () -> Stratified.eval_exn limit_p db)
    in
    let pairs_idb, t_pairs =
      best_of reps (fun () -> Stratified.eval_exn pairs_p db)
    in
    let bounds = Idb.get limit_idb limit_pred in
    let pairs_all = Idb.get pairs_idb limit_pred in
    let dominant_ok =
      Relation.equal bounds (Relation.dominant ~kind ~col:1 pairs_all)
    in
    let derived_ok =
      List.for_all
        (fun p -> Relation.equal (Idb.get limit_idb p) (Idb.get pairs_idb p))
        derived
    in
    let speedup = t_pairs /. t_limit in
    Format.printf
      "  %-10s limit %8.2f ms (%5d bounds)   pairs %8.2f ms (%6d tuples)   \
       %6.1fx   dominant %s   strata-above %s@."
      name (1e3 *. t_limit) (Relation.cardinal bounds) (1e3 *. t_pairs)
      (Relation.cardinal pairs_all) speedup (ok dominant_ok) (ok derived_ok);
    (name, t_limit, t_pairs, speedup, Relation.cardinal bounds,
     Relation.cardinal pairs_all, dominant_ok && derived_ok)
  in
  let min_result =
    run_workload "min_sp" min_limit min_pairs min_db ~kind:`Min
      ~limit_pred:"dist" ~derived:[ "near"; "far" ]
  in
  let max_result =
    run_workload "max_crit" max_limit max_pairs max_db ~kind:`Max
      ~limit_pred:"best" ~derived:[ "good"; "modest" ]
  in
  (* Config parity: the limit model's fingerprint must be invariant across
     storage backends, planners, engines and grain defaults. *)
  let model_fp ?planner ?engine () =
    Idb.fingerprint (Stratified.eval_exn ?planner ?engine min_limit min_db)
  in
  let reference = with_storage `Hashed (fun () -> model_fp ()) in
  let config_fps =
    List.concat_map
      (fun storage ->
        List.concat_map
          (fun planner ->
            List.map
              (fun engine ->
                let name =
                  Printf.sprintf "%s/%s/%s" (storage_name storage)
                    (planner_name planner)
                    (match engine with
                    | `Seminaive -> "seminaive"
                    | `Parallel -> "parallel"
                    | `Naive -> "naive")
                in
                ( name,
                  with_storage storage (fun () ->
                      model_fp ~planner ~engine ()) ))
              [ `Seminaive; `Parallel ])
          [ `Static; `Adaptive ])
      [ `Hashed; `Treeset ]
  in
  let config_fps =
    config_fps
    @ List.map
        (fun grain ->
          ( Printf.sprintf "grain/%s" (grain_name grain),
            with_grain grain (fun () -> model_fp ~engine:`Parallel ()) ))
        [ `Fixed 256; `Rules ]
  in
  let config_divergences =
    List.filter (fun (_, fp) -> fp <> reference) config_fps
  in
  List.iter
    (fun (name, _) -> Format.printf "  DIVERGENCE under %s@." name)
    config_divergences;
  let config_parity = config_divergences = [] in
  Format.printf "  parity: limit model fingerprints (%d configs) %s@."
    (List.length config_fps) (ok config_parity);
  (* E1-E8 invariance: the limit machinery must leave every pre-existing
     experiment count untouched, under both storage backends. *)
  let fp_hashed = with_storage `Hashed parity_fingerprint in
  let fp_treeset = with_storage `Treeset parity_fingerprint in
  let e_divergences =
    List.filter_map
      (fun ((name, h), (name', t)) ->
        assert (name = name');
        if h = t then None else Some name)
      (List.combine fp_hashed fp_treeset)
  in
  List.iter
    (fun name -> Format.printf "  DIVERGENCE E1-E8 %s@." name)
    e_divergences;
  let e18_parity = e_divergences = [] in
  Format.printf "  parity: E1-E8 fingerprints (%d entries) %s@."
    (List.length fp_hashed) (ok e18_parity);
  (* Incremental maintenance: a serve session over the weighted ring under
     mixed insert/delete must track from-scratch saturation with zero full
     (non-delta) applications. *)
  let serve_stats = Stats.create () in
  let t =
    match Serve.create ~stats:serve_stats min_limit min_db with
    | Ok t -> t
    | Error e -> failwith e
  in
  let rng = Prng.create 987654321 in
  let serve_batches = if quick then 24 else 96 in
  let vtx i = Symbol.intern (Printf.sprintf "n%d" i) in
  let serve_parity = ref true in
  for i = 1 to serve_batches do
    let a = Prng.int rng n and b = Prng.int rng n in
    let wt = Symbol.of_int (1 + Prng.int rng 9) in
    let tup = Tuple.of_list [ vtx a; vtx b; wt ] in
    (if Database.mem_fact "edge" tup (Serve.database t) then
       match Serve.delete t [ ("edge", tup) ] with
       | Ok _ -> ()
       | Error e -> failwith e
     else
       match Serve.insert t [ ("edge", tup) ] with
       | Ok _ -> ()
       | Error e -> failwith e);
    if i mod (serve_batches / 4) = 0 then begin
      let scratch = Stratified.eval_exn min_limit (Serve.database t) in
      if not (Idb.equal (Serve.snapshot t) scratch) then begin
        serve_parity := false;
        Format.printf "  SERVE DIVERGENCE after batch %d@." i
      end
    end
  done;
  let serve_full_apps =
    match List.assoc_opt "dred full applications" serve_stats.Stats.extra with
    | Some v -> v
    | None -> 0
  in
  let serve_ok = !serve_parity && serve_full_apps = 0 in
  Format.printf
    "  serve: %d mixed batches, dred full applications = %d, parity %s@."
    serve_batches serve_full_apps (ok !serve_parity);
  let _, _, _, min_speedup, _, _, min_correct = min_result in
  let _, _, _, _, _, _, max_correct = max_result in
  let gate = 5.0 in
  let fast_enough = (not gate_applies) || min_speedup >= gate in
  if not gate_applies then
    Format.printf
      "  gate: SKIPPED (min workload has %d strata, need >= 2)@." min_strata
  else
    Format.printf "  gate: limit >= %.0fx pairs on min_sp %s@." gate
      (ok fast_enough);
  let oc = open_out "BENCH_agg.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"workloads\": [\n";
  List.iteri
    (fun i (name, t_limit, t_pairs, speedup, bounds, pairs, correct) ->
      out "    {\n";
      out "      \"name\": %S,\n" name;
      out "      \"limit_ms\": %.3f,\n" (1e3 *. t_limit);
      out "      \"pairs_ms\": %.3f,\n" (1e3 *. t_pairs);
      out "      \"speedup\": %.2f,\n" speedup;
      out "      \"limit_bounds\": %d,\n" bounds;
      out "      \"pair_tuples\": %d,\n" pairs;
      out "      \"dominant_parity\": %b\n" correct;
      out "    }%s\n" (if i = 0 then "," else ""))
    [ min_result; max_result ];
  out "  ],\n";
  out "  \"serve\": {\n";
  out "    \"batches\": %d,\n" serve_batches;
  out "    \"full_applications\": %d,\n" serve_full_apps;
  out "    \"parity\": %b\n" !serve_parity;
  out "  },\n";
  out "  \"checks\": {\n";
  out "    \"config_fingerprints_match\": %b,\n" config_parity;
  out "    \"e1_e8_fingerprints_match\": %b,\n" e18_parity;
  out "    \"min_strata\": %d,\n" min_strata;
  out "    \"gate\": %s,\n"
    (if gate_applies then Printf.sprintf "%.1f" gate else "\"skipped\"");
  out "    \"fast_enough\": %b\n" fast_enough;
  out "  }\n";
  out "}\n";
  close_out oc;
  if
    not
      (min_correct && max_correct && config_parity && e18_parity && serve_ok
     && fast_enough)
  then begin
    Format.printf "  limit-predicate check failed — failing@.";
    exit 1
  end

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "quick" in
  if what = "tables" || what = "all" then tables ();
  if what = "micro" || what = "all" then run_micro ();
  if what = "eval" then eval_bench ();
  if what = "storage" then storage_bench ~quick ();
  if what = "satpar" then satpar_bench ~quick ();
  if what = "plan" then plan_bench ~quick ();
  if what = "par-fingerprint" then par_fingerprint_print ();
  if what = "par" then par_bench ~quick ();
  if what = "serve" then serve_bench ~quick ();
  if what = "snap" then snap_bench ~quick ();
  if what = "agg" then agg_bench ~quick ()
